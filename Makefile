# One entry point for humans and CI: the workflow in
# .github/workflows/ci.yml runs exactly these targets.

GO      ?= go
JOBS    ?= 0   # 0 = GOMAXPROCS

.PHONY: all build test vet fmt bench bench-baseline bench-regress alloc-regress alloc-baseline repro repro-quick determinism engine-determinism corun-determinism par-determinism service-determinism shard-determinism load-smoke bench-service clean

all: build vet fmt test

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Fails when any file is not gofmt-clean.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Short smoke benchmark (CI); `make bench BENCH=. BENCHTIME=3x` for more.
# Emits the tick-vs-event simulation-kernel throughput report (cycles
# simulated per wall-second, per workload) to /tmp so the CI smoke never
# dirties the committed baseline; `make bench-baseline` refreshes it.
BENCH     ?= SimulatorThroughput
BENCHTIME ?= 1x
bench:
	$(GO) test -bench=$(BENCH) -benchtime=$(BENCHTIME) -run='^$$' .
	$(GO) run ./cmd/gpulat bench-kernel > /tmp/gpulat-bench-kernel.json

# Refresh the committed BENCH_kernel.json baseline (wall-clock numbers
# are machine-dependent: regenerate deliberately, not from CI). Each
# (workload, engine) pair is timed best-of-3 on a fresh device — the
# minimum wall is the stable estimator under host scheduler noise (see
# cmdBenchKernel); the simulated counters must be identical across reps
# or the run fails.
bench-baseline:
	$(GO) run ./cmd/gpulat bench-kernel -par 1,8 > BENCH_kernel.json.tmp
	mv BENCH_kernel.json.tmp BENCH_kernel.json

# Event-engine regression smoke (CI): reduced-scale workloads, single
# rep, -check fails the run when the engines' cycle counts diverge, the
# event engine steps more cycles than the tick engine simulates, or it
# skips nothing. -comparable strips wall-clock fields so the artifact in
# /tmp is byte-diffable across runs.
bench-regress:
	$(GO) run ./cmd/gpulat bench-kernel -quick -check -comparable > /tmp/gpulat-bench-regress.json

# Allocation-regression gate (CI): the per-cycle hot path — coalescer,
# cache miss+fill, full-device Step — must stay within the committed
# BENCH_alloc.json budget (allocs/op, zero for every gated benchmark).
# Runs WITHOUT -race: the detector's instrumentation allocates, which
# would drown the measurement (the gate skips itself under -race). Also
# replays the coalescer fuzz seed corpus against the naive reference.
alloc-regress:
	$(GO) test -count=1 -run 'TestAllocRegression' .
	$(GO) test -count=1 -run 'TestCoalesce|FuzzCoalesce' ./internal/mem

# Refresh the committed BENCH_alloc.json allocation budget (after an
# intentional hot-path change; allocs/op is machine-independent).
alloc-baseline:
	GPULAT_ALLOC_BASELINE=write $(GO) test -count=1 -run 'TestAllocRegression' .

# Full paper-reproduction grid on the parallel runner.
repro:
	$(GO) run ./cmd/gpulat bench-suite -j $(JOBS)

# CI-sized reproduction: every suite section at smoke scale.
repro-quick:
	$(GO) run ./cmd/gpulat bench-suite -quick -j $(JOBS)

# Proves the runner's core contract: -j 1 and -j 8 exports are
# byte-identical.
determinism:
	$(GO) build -o /tmp/gpulat-ci ./cmd/gpulat
	/tmp/gpulat-ci bench-suite -quick -quiet -j 1 -csv > /tmp/gpulat-j1.csv
	/tmp/gpulat-ci bench-suite -quick -quiet -j 8 -csv > /tmp/gpulat-j8.csv
	cmp /tmp/gpulat-j1.csv /tmp/gpulat-j8.csv
	@echo "determinism: -j 1 and -j 8 byte-identical"

# Proves the simulation kernel's core contract: the event-driven loop's
# exports are byte-identical to the cycle-driven reference, CSV and JSON.
engine-determinism:
	$(GO) build -o /tmp/gpulat-ci ./cmd/gpulat
	/tmp/gpulat-ci bench-suite -quick -quiet -j 8 -engine=tick  -csv  > /tmp/gpulat-tick.csv
	/tmp/gpulat-ci bench-suite -quick -quiet -j 8 -engine=event -csv  > /tmp/gpulat-event.csv
	cmp /tmp/gpulat-tick.csv /tmp/gpulat-event.csv
	/tmp/gpulat-ci bench-suite -quick -quiet -j 8 -engine=tick  -json > /tmp/gpulat-tick.json
	/tmp/gpulat-ci bench-suite -quick -quiet -j 8 -engine=event -json > /tmp/gpulat-event.json
	cmp /tmp/gpulat-tick.json /tmp/gpulat-event.json
	@echo "engine-determinism: tick and event engines byte-identical"

# Proves the stream dispatcher's contract on a quick co-run sweep: the
# export is byte-identical across worker counts AND across engines (the
# multi-stream horizons of the event kernel must merge exactly).
corun-determinism:
	$(GO) build -o /tmp/gpulat-ci ./cmd/gpulat
	/tmp/gpulat-ci corun -quick -quiet -j 1 -engine=tick  -csv > /tmp/gpulat-corun-t1.csv
	/tmp/gpulat-ci corun -quick -quiet -j 8 -engine=tick  -csv > /tmp/gpulat-corun-t8.csv
	/tmp/gpulat-ci corun -quick -quiet -j 1 -engine=event -csv > /tmp/gpulat-corun-e1.csv
	/tmp/gpulat-ci corun -quick -quiet -j 8 -engine=event -csv > /tmp/gpulat-corun-e8.csv
	cmp /tmp/gpulat-corun-t1.csv /tmp/gpulat-corun-t8.csv
	cmp /tmp/gpulat-corun-e1.csv /tmp/gpulat-corun-e8.csv
	cmp /tmp/gpulat-corun-t1.csv /tmp/gpulat-corun-e1.csv
	@echo "corun-determinism: -j 1/-j 8 and tick/event byte-identical"

# Proves the phase-parallel stepping contract: the parallel-engine unit
# tests pass under the race detector, and -par 1 vs -par 8 exports are
# byte-identical on the quick bench grid AND a co-run grid, under both
# engines. (-par shards the phases of each simulated cycle across
# goroutines; -j above shards jobs — independent axes, both pinned.)
par-determinism:
	$(GO) test -race -count=1 -run 'TestPool|TestWorkerCountInvariance|TestAtomicOldValuesUniqueAcrossSMs' ./internal/sim ./internal/gpu
	$(GO) build -o /tmp/gpulat-ci ./cmd/gpulat
	/tmp/gpulat-ci bench-suite -quick -quiet -j 1 -par 1 -engine=tick  -csv  > /tmp/gpulat-par1-tick.csv
	/tmp/gpulat-ci bench-suite -quick -quiet -j 1 -par 8 -engine=tick  -csv  > /tmp/gpulat-par8-tick.csv
	cmp /tmp/gpulat-par1-tick.csv /tmp/gpulat-par8-tick.csv
	/tmp/gpulat-ci bench-suite -quick -quiet -j 1 -par 1 -engine=event -csv  > /tmp/gpulat-par1-event.csv
	/tmp/gpulat-ci bench-suite -quick -quiet -j 1 -par 8 -engine=event -csv  > /tmp/gpulat-par8-event.csv
	cmp /tmp/gpulat-par1-event.csv /tmp/gpulat-par8-event.csv
	/tmp/gpulat-ci bench-suite -quick -quiet -j 1 -par 1 -engine=event -json > /tmp/gpulat-par1-event.json
	/tmp/gpulat-ci bench-suite -quick -quiet -j 1 -par 8 -engine=event -json > /tmp/gpulat-par8-event.json
	cmp /tmp/gpulat-par1-event.json /tmp/gpulat-par8-event.json
	/tmp/gpulat-ci corun -quick -quiet -j 1 -par 1 -engine=tick  -csv > /tmp/gpulat-corun-par1-t.csv
	/tmp/gpulat-ci corun -quick -quiet -j 1 -par 8 -engine=tick  -csv > /tmp/gpulat-corun-par8-t.csv
	cmp /tmp/gpulat-corun-par1-t.csv /tmp/gpulat-corun-par8-t.csv
	/tmp/gpulat-ci corun -quick -quiet -j 1 -par 1 -engine=event -csv > /tmp/gpulat-corun-par1-e.csv
	/tmp/gpulat-ci corun -quick -quiet -j 1 -par 8 -engine=event -csv > /tmp/gpulat-corun-par8-e.csv
	cmp /tmp/gpulat-corun-par1-e.csv /tmp/gpulat-corun-par8-e.csv
	@echo "par-determinism: -par 1 and -par 8 byte-identical (bench grid + corun, both engines)"

# Proves the service layer's contract end to end: the quick bench grid
# routed through `gpulat serve`/`gpulat submit` exports byte-identical
# CSV/JSON to a direct bench-suite run, both cold and warm; the warm run
# is answered from the persistent content-addressed cache (the server is
# restarted in between, so in-process dedup can't mask it), /v1/statsz
# reports real cache hits, and the warm submission is >=10x faster.
SVC_ADDR ?= 127.0.0.1:18763
service-determinism:
	$(GO) build -o /tmp/gpulat-ci ./cmd/gpulat
	rm -rf /tmp/gpulat-svc-cache /tmp/gpulat-serve.pid
	/tmp/gpulat-ci bench-suite -quick -quiet -j 8 -csv  > /tmp/gpulat-direct.csv
	/tmp/gpulat-ci bench-suite -quick -quiet -j 8 -json > /tmp/gpulat-direct.json
	set -e; \
	trap 'test -f /tmp/gpulat-serve.pid && kill $$(cat /tmp/gpulat-serve.pid) 2>/dev/null; true' EXIT; \
	/tmp/gpulat-ci serve -addr $(SVC_ADDR) -cache-dir /tmp/gpulat-svc-cache -quiet & echo $$! > /tmp/gpulat-serve.pid; \
	t0=$$(date +%s%N); \
	/tmp/gpulat-ci submit -addr http://$(SVC_ADDR) -quiet -suite -quick -csv > /tmp/gpulat-svc-cold.csv; \
	t1=$$(date +%s%N); \
	kill $$(cat /tmp/gpulat-serve.pid); wait $$(cat /tmp/gpulat-serve.pid) 2>/dev/null || true; \
	/tmp/gpulat-ci serve -addr $(SVC_ADDR) -cache-dir /tmp/gpulat-svc-cache -quiet & echo $$! > /tmp/gpulat-serve.pid; \
	t2=$$(date +%s%N); \
	/tmp/gpulat-ci submit -addr http://$(SVC_ADDR) -quiet -suite -quick -csv > /tmp/gpulat-svc-warm.csv; \
	t3=$$(date +%s%N); \
	/tmp/gpulat-ci submit -addr http://$(SVC_ADDR) -quiet -suite -quick -json > /tmp/gpulat-svc-warm.json; \
	/tmp/gpulat-ci submit -addr http://$(SVC_ADDR) -statsz > /tmp/gpulat-svc-statsz.json; \
	cmp /tmp/gpulat-direct.csv /tmp/gpulat-svc-cold.csv; \
	cmp /tmp/gpulat-direct.csv /tmp/gpulat-svc-warm.csv; \
	cmp /tmp/gpulat-direct.json /tmp/gpulat-svc-warm.json; \
	grep -Eq '"hits": [1-9]' /tmp/gpulat-svc-statsz.json; \
	cold=$$(( (t1 - t0) / 1000000 )); warm=$$(( (t3 - t2) / 1000000 )); \
	echo "service-determinism: cold $${cold}ms, warm $${warm}ms (served from cache)"; \
	test $$(( warm * 10 )) -le $$cold
	@echo "service-determinism: service cold/warm and direct runs byte-identical; warm >=10x faster"

# Proves the sharded tier's contract end to end. Phase 0 pins the
# station/coordinator lifecycle fix under the race detector (Submit
# racing or following Close errors in bounded time instead of hanging).
# Phase 1 fans the quick bench grid from a coordinator over two stock
# backend serves and byte-diffs the export against a direct run. Phase 2
# restarts the coordinator (cold routing state), SIGKILLs one backend
# mid-grid while a submission races, and asserts the grid still
# completes byte-identically via circuit-breaking + re-route (the dead
# backend's keys re-simulate on the survivor). SIGKILL, not SIGTERM: a
# graceful drain would fail queued jobs politely, and the point is
# surviving an impolite death. Phases 3-5 prove the elastic tier: a
# backend joins mid-grid (epoch bump, live keys re-forward) and the
# export stays byte-identical; a cold backend self-registers via
# `serve -join` and is warmed by cache transfer, not recompute (nonzero
# handoff/transfer counters in statsz and /metrics); a backend leaves
# mid-grid and the survivors finish the grid byte-identically; and a
# coordinator SIGKILLed mid-grid replays its write-ahead journal on
# restart and the re-fetched grid is byte-identical.
SHARD_COORD   ?= 127.0.0.1:18764
SHARD_B1      ?= 127.0.0.1:18765
SHARD_B2      ?= 127.0.0.1:18766
SHARD_B3      ?= 127.0.0.1:18770
SHARD_JOURNAL ?= /tmp/gpulat-shard-journal.jsonl
shard-determinism:
	$(GO) build -o /tmp/gpulat-ci ./cmd/gpulat
	$(GO) test -race -count=1 -run 'TestStationSubmitAfterClose|TestStationSubmitCloseRace|TestStationDoUnblocksOnConcurrentClose|TestCoordinatorSubmitAfterClose|TestCoordinatorFailsOver' ./internal/service
	rm -rf /tmp/gpulat-shard-b1 /tmp/gpulat-shard-b2 \
		/tmp/gpulat-b1.pid /tmp/gpulat-b2.pid /tmp/gpulat-coord.pid
	/tmp/gpulat-ci bench-suite -quick -quiet -j 8 -csv  > /tmp/gpulat-direct.csv
	/tmp/gpulat-ci bench-suite -quick -quiet -j 8 -json > /tmp/gpulat-direct.json
	set -e; \
	trap 'for f in /tmp/gpulat-b1.pid /tmp/gpulat-b2.pid /tmp/gpulat-coord.pid; do \
		test -f $$f && kill -9 $$(cat $$f) 2>/dev/null; done; true' EXIT; \
	/tmp/gpulat-ci serve -addr $(SHARD_B1) -cache-dir /tmp/gpulat-shard-b1 -quiet & echo $$! > /tmp/gpulat-b1.pid; \
	/tmp/gpulat-ci serve -addr $(SHARD_B2) -cache-dir /tmp/gpulat-shard-b2 -quiet & echo $$! > /tmp/gpulat-b2.pid; \
	/tmp/gpulat-ci serve -addr $(SHARD_COORD) -backends $(SHARD_B1),$(SHARD_B2) -quiet & echo $$! > /tmp/gpulat-coord.pid; \
	/tmp/gpulat-ci submit -addr http://$(SHARD_COORD) -quiet -suite -quick -csv > /tmp/gpulat-shard-cold.csv; \
	/tmp/gpulat-ci submit -addr http://$(SHARD_COORD) -backendsz > /tmp/gpulat-shard-backendsz.json; \
	cmp /tmp/gpulat-direct.csv /tmp/gpulat-shard-cold.csv; \
	grep -q '"circuit": "closed"' /tmp/gpulat-shard-backendsz.json; \
	grep -q '"submitted": ' /tmp/gpulat-shard-backendsz.json; \
	kill $$(cat /tmp/gpulat-coord.pid) && wait $$(cat /tmp/gpulat-coord.pid) 2>/dev/null || true; \
	/tmp/gpulat-ci serve -addr $(SHARD_COORD) -backends $(SHARD_B1),$(SHARD_B2) -quiet & echo $$! > /tmp/gpulat-coord.pid; \
	rm -rf /tmp/gpulat-shard-b1 /tmp/gpulat-shard-b2; \
	/tmp/gpulat-ci submit -addr http://$(SHARD_COORD) -quiet -suite -quick -csv > /tmp/gpulat-shard-kill.csv & SUBMIT=$$!; \
	sleep 0.05; \
	kill -9 $$(cat /tmp/gpulat-b2.pid); rm -f /tmp/gpulat-b2.pid; \
	wait $$SUBMIT; \
	cmp /tmp/gpulat-direct.csv /tmp/gpulat-shard-kill.csv; \
	/tmp/gpulat-ci submit -addr http://$(SHARD_COORD) -quiet -suite -quick -json > /tmp/gpulat-shard-kill.json; \
	cmp /tmp/gpulat-direct.json /tmp/gpulat-shard-kill.json; \
	for i in $$(seq 1 40); do \
		/tmp/gpulat-ci submit -addr http://$(SHARD_COORD) -backendsz > /tmp/gpulat-shard-backendsz.json; \
		grep -q '"circuit": "open"' /tmp/gpulat-shard-backendsz.json && break; \
		sleep 0.25; \
	done; \
	grep -q '"circuit": "open"' /tmp/gpulat-shard-backendsz.json
	set -e; \
	trap 'for f in /tmp/gpulat-b1.pid /tmp/gpulat-b2.pid /tmp/gpulat-b3.pid /tmp/gpulat-coord.pid; do \
		test -f $$f && kill -9 $$(cat $$f) 2>/dev/null; done; true' EXIT; \
	rm -rf /tmp/gpulat-shard-b1 /tmp/gpulat-shard-b2 /tmp/gpulat-shard-b3 \
		/tmp/gpulat-b1.pid /tmp/gpulat-b2.pid /tmp/gpulat-b3.pid /tmp/gpulat-coord.pid; \
	/tmp/gpulat-ci serve -addr $(SHARD_B1) -cache-dir /tmp/gpulat-shard-b1 -quiet & echo $$! > /tmp/gpulat-b1.pid; \
	/tmp/gpulat-ci serve -addr $(SHARD_B2) -cache-dir /tmp/gpulat-shard-b2 -quiet & echo $$! > /tmp/gpulat-b2.pid; \
	/tmp/gpulat-ci serve -addr $(SHARD_COORD) -backends $(SHARD_B1) -quiet & echo $$! > /tmp/gpulat-coord.pid; \
	/tmp/gpulat-ci submit -addr http://$(SHARD_COORD) -quiet -suite -quick -csv > /tmp/gpulat-shard-join.csv & SUBMIT=$$!; \
	sleep 0.05; \
	/tmp/gpulat-ci backends -addr http://$(SHARD_COORD) join $(SHARD_B2) > /tmp/gpulat-shard-joinchange.json; \
	wait $$SUBMIT; \
	cmp /tmp/gpulat-direct.csv /tmp/gpulat-shard-join.csv; \
	/tmp/gpulat-ci submit -addr http://$(SHARD_COORD) -quiet -suite -quick -json > /tmp/gpulat-shard-join.json; \
	cmp /tmp/gpulat-direct.json /tmp/gpulat-shard-join.json; \
	grep -q '"action": "join"' /tmp/gpulat-shard-joinchange.json; \
	grep -q '"epoch": 2' /tmp/gpulat-shard-joinchange.json; \
	/tmp/gpulat-ci serve -addr $(SHARD_B3) -cache-dir /tmp/gpulat-shard-b3 \
		-join http://$(SHARD_COORD) -advertise $(SHARD_B3) -quiet & echo $$! > /tmp/gpulat-b3.pid; \
	for i in $$(seq 1 40); do \
		/tmp/gpulat-ci submit -addr http://$(SHARD_COORD) -backendsz > /tmp/gpulat-shard-backendsz.json 2>/dev/null || true; \
		grep -q '"epoch": 3' /tmp/gpulat-shard-backendsz.json && break; \
		sleep 0.25; \
	done; \
	grep -q '"epoch": 3' /tmp/gpulat-shard-backendsz.json; \
	grep -q '"ring_share"' /tmp/gpulat-shard-backendsz.json; \
	/tmp/gpulat-ci submit -addr http://$(SHARD_COORD) -statsz > /tmp/gpulat-shard-statsz.json; \
	grep -q '"ring_epoch": 3' /tmp/gpulat-shard-statsz.json; \
	grep -q '"handoff_transferred"' /tmp/gpulat-shard-statsz.json; \
	curl -sf http://$(SHARD_B3)/metrics | grep -Eq 'gpulat_cache_transfer_in_total [1-9]'; \
	curl -sf http://$(SHARD_COORD)/metrics | grep -Eq 'gpulat_station_handoff_transferred_total [1-9]'
	set -e; \
	trap 'for f in /tmp/gpulat-b1.pid /tmp/gpulat-b2.pid /tmp/gpulat-coord.pid; do \
		test -f $$f && kill -9 $$(cat $$f) 2>/dev/null; done; true' EXIT; \
	rm -rf /tmp/gpulat-shard-b1 /tmp/gpulat-shard-b2 \
		/tmp/gpulat-b1.pid /tmp/gpulat-b2.pid /tmp/gpulat-coord.pid; \
	/tmp/gpulat-ci serve -addr $(SHARD_B1) -cache-dir /tmp/gpulat-shard-b1 -quiet & echo $$! > /tmp/gpulat-b1.pid; \
	/tmp/gpulat-ci serve -addr $(SHARD_B2) -cache-dir /tmp/gpulat-shard-b2 -quiet & echo $$! > /tmp/gpulat-b2.pid; \
	/tmp/gpulat-ci serve -addr $(SHARD_COORD) -backends $(SHARD_B1),$(SHARD_B2) -quiet & echo $$! > /tmp/gpulat-coord.pid; \
	/tmp/gpulat-ci submit -addr http://$(SHARD_COORD) -quiet -suite -quick -csv > /tmp/gpulat-shard-leave.csv & SUBMIT=$$!; \
	sleep 0.05; \
	/tmp/gpulat-ci backends -addr http://$(SHARD_COORD) leave $(SHARD_B2) > /tmp/gpulat-shard-leavechange.json; \
	wait $$SUBMIT; \
	cmp /tmp/gpulat-direct.csv /tmp/gpulat-shard-leave.csv; \
	/tmp/gpulat-ci submit -addr http://$(SHARD_COORD) -quiet -suite -quick -json > /tmp/gpulat-shard-leave.json; \
	cmp /tmp/gpulat-direct.json /tmp/gpulat-shard-leave.json; \
	grep -q '"action": "leave"' /tmp/gpulat-shard-leavechange.json; \
	grep -q '"members": 1' /tmp/gpulat-shard-leavechange.json
	set -e; \
	trap 'for f in /tmp/gpulat-b1.pid /tmp/gpulat-coord.pid; do \
		test -f $$f && kill -9 $$(cat $$f) 2>/dev/null; done; true' EXIT; \
	rm -rf /tmp/gpulat-shard-b1 $(SHARD_JOURNAL) \
		/tmp/gpulat-b1.pid /tmp/gpulat-coord.pid; \
	/tmp/gpulat-ci serve -addr $(SHARD_B1) -cache-dir /tmp/gpulat-shard-b1 -quiet & echo $$! > /tmp/gpulat-b1.pid; \
	/tmp/gpulat-ci serve -addr $(SHARD_COORD) -backends $(SHARD_B1) -journal $(SHARD_JOURNAL) -quiet & echo $$! > /tmp/gpulat-coord.pid; \
	/tmp/gpulat-ci submit -addr http://$(SHARD_COORD) -quiet -suite -quick -csv > /tmp/gpulat-shard-crash.csv & SUBMIT=$$!; \
	sleep 0.1; \
	kill -9 $$(cat /tmp/gpulat-coord.pid); rm -f /tmp/gpulat-coord.pid; \
	wait $$SUBMIT || true; \
	/tmp/gpulat-ci serve -addr $(SHARD_COORD) -backends $(SHARD_B1) -journal $(SHARD_JOURNAL) -quiet & echo $$! > /tmp/gpulat-coord.pid; \
	for i in $$(seq 1 40); do \
		/tmp/gpulat-ci submit -addr http://$(SHARD_COORD) -statsz > /tmp/gpulat-shard-statsz.json 2>/dev/null || true; \
		grep -q '"replayed"' /tmp/gpulat-shard-statsz.json && break; \
		sleep 0.25; \
	done; \
	grep -q '"replayed"' /tmp/gpulat-shard-statsz.json; \
	/tmp/gpulat-ci submit -addr http://$(SHARD_COORD) -quiet -suite -quick -csv > /tmp/gpulat-shard-recovered.csv; \
	cmp /tmp/gpulat-direct.csv /tmp/gpulat-shard-recovered.csv; \
	/tmp/gpulat-ci submit -addr http://$(SHARD_COORD) -quiet -suite -quick -json > /tmp/gpulat-shard-recovered.json; \
	cmp /tmp/gpulat-direct.json /tmp/gpulat-shard-recovered.json
	@echo "shard-determinism: coordinator byte-identical to direct across a backend kill, join/leave mid-grid, a warm self-registered joiner, and a journal-replayed coordinator crash"

# Proves the observability tier under load (CI): a short dedup-heavy
# loadgen run against a 2-backend coordinator, every /metrics scrape
# Lint-validated by loadgen itself. The tier is then fully restarted —
# backends included, because a surviving backend answers repeats from
# in-memory dedup and masks the disk cache — and the warm replay must
# be answered with real cache hits (-min-hits) out of the persistent
# backend caches.
LOAD_COORD ?= 127.0.0.1:18767
LOAD_B1    ?= 127.0.0.1:18768
LOAD_B2    ?= 127.0.0.1:18769
load-smoke:
	$(GO) build -o /tmp/gpulat-ci ./cmd/gpulat
	rm -rf /tmp/gpulat-load-b1 /tmp/gpulat-load-b2 \
		/tmp/gpulat-lb1.pid /tmp/gpulat-lb2.pid /tmp/gpulat-lcoord.pid
	set -e; \
	trap 'for f in /tmp/gpulat-lb1.pid /tmp/gpulat-lb2.pid /tmp/gpulat-lcoord.pid; do \
		test -f $$f && kill -9 $$(cat $$f) 2>/dev/null; done; true' EXIT; \
	/tmp/gpulat-ci serve -addr $(LOAD_B1) -cache-dir /tmp/gpulat-load-b1 -quiet & echo $$! > /tmp/gpulat-lb1.pid; \
	/tmp/gpulat-ci serve -addr $(LOAD_B2) -cache-dir /tmp/gpulat-load-b2 -quiet & echo $$! > /tmp/gpulat-lb2.pid; \
	/tmp/gpulat-ci serve -addr $(LOAD_COORD) -backends $(LOAD_B1),$(LOAD_B2) -quiet & echo $$! > /tmp/gpulat-lcoord.pid; \
	/tmp/gpulat-ci loadgen -addr http://$(LOAD_COORD) -scrape-addrs $(LOAD_B1),$(LOAD_B2) \
		-requests 60 -clients 4 -unique 12 -accesses 8 -scrape 200ms \
		-out /tmp/gpulat-load-cold.json; \
	for f in /tmp/gpulat-lcoord.pid /tmp/gpulat-lb1.pid /tmp/gpulat-lb2.pid; do \
		kill $$(cat $$f); wait $$(cat $$f) 2>/dev/null || true; done; \
	/tmp/gpulat-ci serve -addr $(LOAD_B1) -cache-dir /tmp/gpulat-load-b1 -quiet & echo $$! > /tmp/gpulat-lb1.pid; \
	/tmp/gpulat-ci serve -addr $(LOAD_B2) -cache-dir /tmp/gpulat-load-b2 -quiet & echo $$! > /tmp/gpulat-lb2.pid; \
	/tmp/gpulat-ci serve -addr $(LOAD_COORD) -backends $(LOAD_B1),$(LOAD_B2) -quiet & echo $$! > /tmp/gpulat-lcoord.pid; \
	/tmp/gpulat-ci loadgen -addr http://$(LOAD_COORD) -scrape-addrs $(LOAD_B1),$(LOAD_B2) \
		-requests 60 -clients 4 -unique 12 -accesses 8 -scrape 200ms \
		-min-hits 1 -out /tmp/gpulat-load-warm.json; \
	grep -q '"served_qps"' /tmp/gpulat-load-warm.json; \
	grep -q '"hit_ratio"' /tmp/gpulat-load-warm.json
	@echo "load-smoke: warm replay hit the persistent backend caches; every /metrics scrape stayed valid"

# Refresh the committed BENCH_service.json service-tier baseline
# (wall-clock numbers are machine-dependent: regenerate deliberately,
# not from CI). A cold loadgen run at the default mix populates a
# single station's persistent cache, the server is restarted so
# in-process dedup can't answer, and the warm replay is the committed
# artifact: served QPS, latency quantiles, cache outcome, hit curve.
BENCHSVC_ADDR ?= 127.0.0.1:18770
bench-service:
	$(GO) build -o /tmp/gpulat-ci ./cmd/gpulat
	rm -rf /tmp/gpulat-benchsvc-cache /tmp/gpulat-benchsvc.pid
	set -e; \
	trap 'test -f /tmp/gpulat-benchsvc.pid && kill -9 $$(cat /tmp/gpulat-benchsvc.pid) 2>/dev/null; true' EXIT; \
	/tmp/gpulat-ci serve -addr $(BENCHSVC_ADDR) -cache-dir /tmp/gpulat-benchsvc-cache -quiet & echo $$! > /tmp/gpulat-benchsvc.pid; \
	/tmp/gpulat-ci loadgen -addr http://$(BENCHSVC_ADDR) -out /tmp/gpulat-benchsvc-cold.json; \
	kill $$(cat /tmp/gpulat-benchsvc.pid); wait $$(cat /tmp/gpulat-benchsvc.pid) 2>/dev/null || true; \
	/tmp/gpulat-ci serve -addr $(BENCHSVC_ADDR) -cache-dir /tmp/gpulat-benchsvc-cache -quiet & echo $$! > /tmp/gpulat-benchsvc.pid; \
	/tmp/gpulat-ci loadgen -addr http://$(BENCHSVC_ADDR) -min-hits 1 -out BENCH_service.json.tmp; \
	mv BENCH_service.json.tmp BENCH_service.json
	@echo "bench-service: BENCH_service.json refreshed (warm replay against the persistent cache)"

clean:
	$(GO) clean
	rm -f /tmp/gpulat-ci /tmp/gpulat-bench-regress.json \
		/tmp/gpulat-j1.csv /tmp/gpulat-j8.csv \
		/tmp/gpulat-tick.csv /tmp/gpulat-event.csv \
		/tmp/gpulat-tick.json /tmp/gpulat-event.json \
		/tmp/gpulat-corun-t1.csv /tmp/gpulat-corun-t8.csv \
		/tmp/gpulat-corun-e1.csv /tmp/gpulat-corun-e8.csv \
		/tmp/gpulat-par1-tick.csv /tmp/gpulat-par8-tick.csv \
		/tmp/gpulat-par1-event.csv /tmp/gpulat-par8-event.csv \
		/tmp/gpulat-par1-event.json /tmp/gpulat-par8-event.json \
		/tmp/gpulat-corun-par1-t.csv /tmp/gpulat-corun-par8-t.csv \
		/tmp/gpulat-corun-par1-e.csv /tmp/gpulat-corun-par8-e.csv \
		/tmp/gpulat-direct.csv /tmp/gpulat-direct.json \
		/tmp/gpulat-svc-cold.csv /tmp/gpulat-svc-warm.csv \
		/tmp/gpulat-svc-warm.json /tmp/gpulat-svc-statsz.json \
		/tmp/gpulat-serve.pid \
		/tmp/gpulat-shard-cold.csv /tmp/gpulat-shard-kill.csv \
		/tmp/gpulat-shard-kill.json /tmp/gpulat-shard-backendsz.json \
		/tmp/gpulat-b1.pid /tmp/gpulat-b2.pid /tmp/gpulat-coord.pid \
		/tmp/gpulat-load-cold.json /tmp/gpulat-load-warm.json \
		/tmp/gpulat-lb1.pid /tmp/gpulat-lb2.pid /tmp/gpulat-lcoord.pid \
		/tmp/gpulat-benchsvc-cold.json /tmp/gpulat-benchsvc.pid
	rm -rf /tmp/gpulat-svc-cache /tmp/gpulat-shard-b1 /tmp/gpulat-shard-b2 \
		/tmp/gpulat-load-b1 /tmp/gpulat-load-b2 /tmp/gpulat-benchsvc-cache
