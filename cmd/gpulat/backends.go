package main

import (
	"context"
	"os"
	"os/signal"
	"time"

	"gpulat/internal/service"
)

// cmdBackends is the coordinator pool admin: inspect the ring and move
// backends in and out of it at runtime.
//
//	gpulat backends -addr http://coord list
//	gpulat backends -addr http://coord join  127.0.0.1:8092
//	gpulat backends -addr http://coord leave 127.0.0.1:8092
//
// join/leave print the resulting MembershipChange: the new epoch and
// how many keys the change moved, re-forwarded, and warm-transferred.
func cmdBackends(args []string) error {
	fs := newFlags("backends")
	addr := fs.String("addr", "http://127.0.0.1:8091", "coordinator base URL")
	wait := fs.Duration("wait", 15*time.Second, "how long to wait for the coordinator to come up")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	verb := "list"
	rest := fs.Args()
	if len(rest) > 0 {
		verb = rest[0]
	}
	switch verb {
	case "list":
		if len(rest) > 1 {
			return usagef("backends: list takes no arguments")
		}
	case "join", "leave":
		if len(rest) != 2 {
			return usagef("backends: %s needs exactly one backend address", verb)
		}
	default:
		return usagef("backends: unknown action %q (want list, join, or leave)", verb)
	}

	client := service.NewClient(*addr)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := client.WaitHealthy(ctx, *wait); err != nil {
		return err
	}
	switch verb {
	case "join":
		ch, err := client.JoinBackend(ctx, rest[1])
		if err != nil {
			return err
		}
		return printJSON(ch)
	case "leave":
		ch, err := client.LeaveBackend(ctx, rest[1])
		if err != nil {
			return err
		}
		return printJSON(ch)
	default:
		b, err := client.Backendsz(ctx)
		if err != nil {
			return err
		}
		return printJSON(b)
	}
}
