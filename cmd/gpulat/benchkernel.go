package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"gpulat/internal/gpu"
	"gpulat/internal/kernels"
	"gpulat/internal/sim"
	"gpulat/internal/stats"
)

// kernelBench is one (workload, engine) measurement of simulator
// throughput: how many device cycles the simulator covers per
// wall-clock second. The event engine's advantage is the skipped share —
// cycles it fast-forwarded instead of stepping.
type kernelBench struct {
	Workload        string  `json:"workload"`
	Engine          string  `json:"engine"`
	Cycles          uint64  `json:"cycles"`
	SteppedCycles   uint64  `json:"stepped_cycles"`
	SkippedCycles   uint64  `json:"skipped_cycles"`
	WallSeconds     float64 `json:"wall_seconds"`
	CyclesPerSecond float64 `json:"cycles_per_second"`
}

// kernelBenchReport is the BENCH_kernel.json payload: per-workload
// throughput under both engines plus the headline speedups.
type kernelBenchReport struct {
	Arch       string             `json:"arch"`
	Benchmarks []kernelBench      `json:"benchmarks"`
	Speedup    map[string]float64 `json:"speedup_event_over_tick"`
}

// benchWorkloads builds the measured workloads: the latency-bound
// pointer chase (the event engine's headline case — the machine idles on
// one DRAM access at a time), the bandwidth-bound vecadd (the stress
// case, with almost no skippable cycles), and BFS (the paper's mixed
// dynamic workload).
func benchWorkloads(g *gpu.GPU, name string, seed uint64) (sim.Cycle, error) {
	switch name {
	case "pointerchase":
		wl, err := kernels.PChase(kernels.PChaseConfig{
			Base: 0x10000, StrideBytes: 512, FootprintBytes: 2 << 20, Accesses: 2000,
		})
		if err != nil {
			return 0, err
		}
		return kernels.Run(g, wl)
	case "vecadd":
		wl, err := kernels.NewByName("vecadd", kernels.ScaleExperiment, seed)
		if err != nil {
			return 0, err
		}
		return kernels.Run(g, wl)
	case "bfs":
		graph := kernels.GenScaleFree(1<<11, 4, seed)
		mk, err := kernels.BFS(kernels.BFSConfig{Graph: graph, Source: 0, BlockDim: 128})
		if err != nil {
			return 0, err
		}
		cycles, _, err := kernels.RunMulti(g, mk)
		return cycles, err
	}
	return 0, usagef("bench-kernel: unknown workload %q", name)
}

// cmdBenchKernel measures simulation-kernel throughput (cycles simulated
// per wall-second) for each workload under both engines and writes the
// JSON report `make bench` commits as BENCH_kernel.json.
func cmdBenchKernel(args []string) error {
	fs := newFlags("bench-kernel")
	arch := fs.String("arch", "GF100", "architecture preset (or file:<path>)")
	comparable := fs.Bool("comparable", false,
		"strip wall-clock fields (wall_seconds, cycles_per_second, speedups) so reports from different runs can be byte-diffed")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	base, err := mustConfig(*arch)
	if err != nil {
		return err
	}

	report := kernelBenchReport{Arch: base.Name, Speedup: map[string]float64{}}
	rate := map[string]map[string]float64{}
	for _, wl := range []string{"pointerchase", "vecadd", "bfs"} {
		rate[wl] = map[string]float64{}
		for _, engine := range []sim.Engine{sim.EngineTick, sim.EngineEvent} {
			cfg := base
			cfg.Engine = engine
			g := gpu.New(cfg)
			begin := time.Now()
			cycles, err := benchWorkloads(g, wl, 42)
			if err != nil {
				return fmt.Errorf("bench-kernel %s/%s: %w", wl, engine, err)
			}
			wall := time.Since(begin).Seconds()
			st := g.Stats()
			b := kernelBench{
				Workload:        wl,
				Engine:          engine.String(),
				Cycles:          uint64(cycles),
				SteppedCycles:   st.Cycles - st.SkippedCycles,
				SkippedCycles:   st.SkippedCycles,
				WallSeconds:     wall,
				CyclesPerSecond: float64(cycles) / wall,
			}
			report.Benchmarks = append(report.Benchmarks, b)
			rate[wl][engine.String()] = b.CyclesPerSecond
			fmt.Fprintf(os.Stderr, "bench-kernel: %-12s %-5s %9d cycles (%d stepped, %d skipped) in %.3fs — %.0f cycles/s\n",
				wl, engine, uint64(cycles), b.SteppedCycles, b.SkippedCycles, wall, b.CyclesPerSecond)
		}
		report.Speedup[wl] = rate[wl]["event"] / rate[wl]["tick"]
	}

	if *comparable {
		data, err := stats.ComparableJSON(report)
		if err != nil {
			return err
		}
		_, err = os.Stdout.Write(data)
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}
