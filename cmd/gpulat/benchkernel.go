package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"gpulat/internal/gpu"
	"gpulat/internal/kernels"
	"gpulat/internal/sim"
	"gpulat/internal/stats"
)

// kernelBench is one (workload, engine, workers) measurement of
// simulator throughput: how many device cycles the simulator covers per
// wall-clock second. The event engine's advantage is the skipped share —
// cycles it fast-forwarded instead of stepping; the workers dimension
// measures phase-parallel stepping (-par), which must leave every
// simulated number untouched.
type kernelBench struct {
	Workload        string  `json:"workload"`
	Engine          string  `json:"engine"`
	Workers         int     `json:"workers"`
	Cycles          uint64  `json:"cycles"`
	SteppedCycles   uint64  `json:"stepped_cycles"`
	SkippedCycles   uint64  `json:"skipped_cycles"`
	WallSeconds     float64 `json:"wall_seconds"`
	CyclesPerSecond float64 `json:"cycles_per_second"`
}

// kernelBenchReport is the BENCH_kernel.json payload: per-workload
// throughput under both engines and every measured -par width, plus the
// headline speedups. Engine speedups compare at the baseline (first)
// width; par_speedup entries compare each wider measurement against the
// same workload/engine at the baseline width.
type kernelBenchReport struct {
	Arch       string             `json:"arch"`
	TimingReps int                `json:"timing_reps"`
	Benchmarks []kernelBench      `json:"benchmarks"`
	Speedup    map[string]float64 `json:"speedup_event_over_tick"`
	ParSpeedup map[string]float64 `json:"par_speedup,omitempty"`
}

// parseParList parses the -par flag's comma-separated worker widths.
func parseParList(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		w, err := strconv.Atoi(f)
		if err != nil || w < 1 {
			return nil, usagef("bench-kernel: -par widths must be integers >= 1 (got %q)", f)
		}
		out = append(out, w)
	}
	if len(out) == 0 {
		return nil, usagef("bench-kernel: -par lists no widths")
	}
	return out, nil
}

// benchWorkloads builds the measured workloads: the latency-bound
// pointer chase (the event engine's headline case — the machine idles on
// one DRAM access at a time), the bandwidth-bound vecadd (the stress
// case, with almost no skippable cycles), and BFS (the paper's mixed
// dynamic workload). quick shrinks every workload for the CI smoke gate,
// where the point is the cross-engine checks, not the timings.
func benchWorkloads(g *gpu.GPU, name string, seed uint64, quick bool) (sim.Cycle, error) {
	switch name {
	case "pointerchase":
		accesses := 2000
		if quick {
			accesses = 300
		}
		wl, err := kernels.PChase(kernels.PChaseConfig{
			Base: 0x10000, StrideBytes: 512, FootprintBytes: 2 << 20, Accesses: accesses,
		})
		if err != nil {
			return 0, err
		}
		return kernels.Run(g, wl)
	case "vecadd":
		scale := kernels.ScaleExperiment
		if quick {
			scale = kernels.ScaleTest
		}
		wl, err := kernels.NewByName("vecadd", scale, seed)
		if err != nil {
			return 0, err
		}
		return kernels.Run(g, wl)
	case "bfs":
		nodes := 1 << 11
		if quick {
			nodes = 1 << 9
		}
		graph := kernels.GenScaleFree(nodes, 4, seed)
		mk, err := kernels.BFS(kernels.BFSConfig{Graph: graph, Source: 0, BlockDim: 128})
		if err != nil {
			return 0, err
		}
		cycles, _, err := kernels.RunMulti(g, mk)
		return cycles, err
	}
	return 0, usagef("bench-kernel: unknown workload %q", name)
}

// cmdBenchKernel measures simulation-kernel throughput (cycles simulated
// per wall-second) for each workload under both engines and writes the
// JSON report `make bench-baseline` commits as BENCH_kernel.json.
//
// Methodology: every (workload, engine) pair runs -reps times on a fresh
// device and the MINIMUM wall time is reported. Single-run walls vary
// tens of percent with host scheduler noise; the minimum is the stable
// estimator of the simulator's actual cost (anything above it is
// interference, never the simulator being "faster than possible"). The
// simulated results themselves must be identical across repetitions —
// any divergence fails the run, so timing reps double as a free
// determinism check.
func cmdBenchKernel(args []string) error {
	fs := newFlags("bench-kernel")
	arch := fs.String("arch", "GF100", "architecture preset (or file:<path>)")
	reps := fs.Int("reps", 3, "timing repetitions per measurement; the minimum wall is reported")
	quick := fs.Bool("quick", false, "reduced workload scales and a single repetition (CI smoke gate)")
	check := fs.Bool("check", false, "exit nonzero when the engines disagree on cycle counts or the event engine steps more cycles than the tick engine simulates")
	comparable := fs.Bool("comparable", false,
		"strip wall-clock fields (wall_seconds, cycles_per_second, speedups, reps) so reports from different runs can be byte-diffed")
	par := fs.String("par", "1", "comma-separated -par widths to measure (e.g. 1,2,4,8); the first is the speedup baseline")
	cpuProf := fs.String("cpuprofile", "", "write a CPU profile to this file (inspect with `go tool pprof`)")
	memProf := fs.String("memprofile", "", "write an allocation profile to this file at exit")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "bench-kernel:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the final live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "bench-kernel:", err)
			}
		}()
	}
	widths, err := parseParList(*par)
	if err != nil {
		return err
	}
	base, err := mustConfig(*arch)
	if err != nil {
		return err
	}
	if *quick {
		*reps = 1
	}
	if *reps < 1 {
		return usagef("bench-kernel: -reps must be >= 1")
	}

	report := kernelBenchReport{Arch: base.Name, TimingReps: *reps, Speedup: map[string]float64{}}
	if len(widths) > 1 {
		report.ParSpeedup = map[string]float64{}
	}
	rate := map[string]float64{}
	result := map[string]kernelBench{}
	key := func(wl string, engine sim.Engine, w int) string {
		return fmt.Sprintf("%s/%s/par%d", wl, engine, w)
	}
	for _, wl := range []string{"pointerchase", "vecadd", "bfs"} {
		for _, engine := range []sim.Engine{sim.EngineTick, sim.EngineEvent} {
			for _, w := range widths {
				var best kernelBench
				for r := 0; r < *reps; r++ {
					cfg := base
					cfg.Engine = engine
					cfg.Workers = w
					g := gpu.New(cfg)
					begin := time.Now()
					cycles, err := benchWorkloads(g, wl, 42, *quick)
					if err != nil {
						return fmt.Errorf("bench-kernel %s/%s/par%d: %w", wl, engine, w, err)
					}
					wall := time.Since(begin).Seconds()
					st := g.Stats()
					b := kernelBench{
						Workload:        wl,
						Engine:          engine.String(),
						Workers:         w,
						Cycles:          uint64(cycles),
						SteppedCycles:   st.Cycles - st.SkippedCycles,
						SkippedCycles:   st.SkippedCycles,
						WallSeconds:     wall,
						CyclesPerSecond: float64(cycles) / wall,
					}
					if r == 0 {
						best = b
						continue
					}
					if b.Cycles != best.Cycles || b.SteppedCycles != best.SteppedCycles {
						return fmt.Errorf("bench-kernel %s/%s/par%d: rep %d nondeterministic (cycles %d/%d, stepped %d/%d)",
							wl, engine, w, r, b.Cycles, best.Cycles, b.SteppedCycles, best.SteppedCycles)
					}
					if b.WallSeconds < best.WallSeconds {
						best.WallSeconds = b.WallSeconds
						best.CyclesPerSecond = b.CyclesPerSecond
					}
				}
				report.Benchmarks = append(report.Benchmarks, best)
				rate[key(wl, engine, w)] = best.CyclesPerSecond
				result[key(wl, engine, w)] = best
				if w != widths[0] {
					report.ParSpeedup[key(wl, engine, w)] = best.CyclesPerSecond / rate[key(wl, engine, widths[0])]
				}
				fmt.Fprintf(os.Stderr, "bench-kernel: %-12s %-5s par%-2d %9d cycles (%d stepped, %d skipped) best of %d: %.3fs — %.0f cycles/s\n",
					wl, engine, w, best.Cycles, best.SteppedCycles, best.SkippedCycles, *reps, best.WallSeconds, best.CyclesPerSecond)
			}
		}
		report.Speedup[wl] = rate[key(wl, sim.EngineEvent, widths[0])] / rate[key(wl, sim.EngineTick, widths[0])]
	}

	if *check {
		// The regression gate: the engines must agree cycle-for-cycle at
		// every width, every width must agree with the baseline width
		// (phase-parallel stepping may never change simulated numbers),
		// and the event engine must never step more cycles than the tick
		// engine simulates (a stepped count above that means the skip
		// machinery stopped skipping — a perf regression even when the
		// results still match).
		bad := false
		for _, wl := range []string{"pointerchase", "vecadd", "bfs"} {
			for _, w := range widths {
				tick, event := result[key(wl, sim.EngineTick, w)], result[key(wl, sim.EngineEvent, w)]
				if tick.Cycles != event.Cycles {
					fmt.Fprintf(os.Stderr, "bench-kernel: CHECK FAIL %s/par%d: tick %d cycles, event %d cycles\n", wl, w, tick.Cycles, event.Cycles)
					bad = true
				}
				if event.SteppedCycles > tick.Cycles {
					fmt.Fprintf(os.Stderr, "bench-kernel: CHECK FAIL %s/par%d: event stepped %d > tick cycles %d\n", wl, w, event.SteppedCycles, tick.Cycles)
					bad = true
				}
				if event.SkippedCycles == 0 {
					fmt.Fprintf(os.Stderr, "bench-kernel: CHECK FAIL %s/par%d: event engine skipped nothing\n", wl, w)
					bad = true
				}
				for _, engine := range []sim.Engine{sim.EngineTick, sim.EngineEvent} {
					b, b1 := result[key(wl, engine, w)], result[key(wl, engine, widths[0])]
					if b.Cycles != b1.Cycles || b.SteppedCycles != b1.SteppedCycles {
						fmt.Fprintf(os.Stderr, "bench-kernel: CHECK FAIL %s/%s: par%d (%d cycles, %d stepped) diverges from par%d (%d cycles, %d stepped)\n",
							wl, engine, w, b.Cycles, b.SteppedCycles, widths[0], b1.Cycles, b1.SteppedCycles)
						bad = true
					}
				}
			}
		}
		if bad {
			return fmt.Errorf("bench-kernel: engine regression check failed")
		}
		fmt.Fprintln(os.Stderr, "bench-kernel: engine regression check passed")
	}

	if *comparable {
		data, err := stats.ComparableJSON(report)
		if err != nil {
			return err
		}
		_, err = os.Stdout.Write(data)
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}
