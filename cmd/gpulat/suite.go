package main

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"gpulat/internal/runner"
)

// suiteJobs assembles the whole paper-reproduction grid: Table I on all
// four generations, Figures 1–2, the "other workloads" breakdowns, the
// three ablations, and the load curve — every experiment the README
// walks through, as one parallel job list. quick shrinks inputs to CI
// smoke size while keeping every section represented.
func suiteJobs(quick bool) []runner.Job {
	accesses := 256
	cycles := 0 // LoadedLatency default (50k)
	vertices := 0
	testScale := false
	if quick {
		accesses = 48
		cycles = 8_000
		vertices = 1 << 9
		testScale = true
	}

	label := func(section string, o runner.Options) runner.Options {
		if o.Label == "" {
			o.Label = section
		} else {
			o.Label = section + "/" + o.Label
		}
		o.TestScale = testScale
		if o.Vertices == 0 {
			o.Vertices = vertices
		}
		return o
	}
	withLabels := func(section string, opts []runner.Options) []runner.Options {
		out := make([]runner.Options, len(opts))
		for i, o := range opts {
			out[i] = label(section, o)
		}
		return out
	}

	var jobs []runner.Job

	// Table I: one static measurement per generation.
	jobs = append(jobs, runner.Grid{
		Kind:     runner.KindStatic,
		Archs:    []string{"GT200", "GF106", "GK104", "GM107"},
		Variants: []runner.Options{label("table1", runner.Options{Accesses: accesses})},
	}.Jobs()...)

	// Figures 1 and 2 share one instrumented BFS run on GF100.
	jobs = append(jobs, runner.Grid{
		Kind:      runner.KindDynamic,
		Archs:     []string{"GF100"},
		Kernels:   []string{"bfs"},
		Variants:  []runner.Options{label("fig1+fig2", runner.Options{})},
		FixedSeed: true,
	}.Jobs()...)

	// §III "other workloads": the per-kernel breakdowns.
	jobs = append(jobs, runner.Grid{
		Kind:     runner.KindDynamic,
		Archs:    []string{"GF100"},
		Kernels:  []string{"vecadd", "spmv", "transpose", "histogram", "stencil2d", "reduce"},
		Variants: []runner.Options{label("workloads", runner.Options{})},
		BaseSeed: 7, FixedSeed: true,
	}.Jobs()...)

	// A1: DRAM scheduler, on synthetic near-saturation traffic.
	jobs = append(jobs, runner.Grid{
		Kind:  runner.KindLoaded,
		Archs: []string{"GF100"},
		Variants: withLabels("ablate-dram",
			dramSchedVariants(runner.Options{OfferedLoad: 0.04, Cycles: 30_000})),
		BaseSeed: 1, FixedSeed: true,
	}.Jobs()...)

	// A2: warp scheduler.
	var schedVariants []runner.Options
	for _, sched := range []string{"LRR", "GTO"} {
		o := runner.Options{Label: sched}
		o.Overrides.WarpSched = sched
		schedVariants = append(schedVariants, o)
	}
	jobs = append(jobs, runner.Grid{
		Kind: runner.KindDynamic, Archs: []string{"GF100"}, Kernels: []string{"bfs"},
		Variants: withLabels("ablate-sched", schedVariants), FixedSeed: true,
	}.Jobs()...)

	// A3: L1 MSHR capacity.
	var mshrVariants []runner.Options
	for _, mshrs := range []int{4, 16, 64} {
		o := runner.Options{Label: fmt.Sprintf("mshr=%d", mshrs)}
		o.Overrides.L1MSHRs = mshrs
		mshrVariants = append(mshrVariants, o)
	}
	jobs = append(jobs, runner.Grid{
		Kind: runner.KindDynamic, Archs: []string{"GF100"}, Kernels: []string{"bfs"},
		Variants: withLabels("ablate-mshr", mshrVariants), FixedSeed: true,
	}.Jobs()...)

	// Latency hiding vs occupancy.
	var occVariants []runner.Options
	for _, w := range []int{4, 16, 48} {
		occVariants = append(occVariants, runner.Options{
			Label: fmt.Sprintf("warps=%d", w), WarpLimit: w,
		})
	}
	jobs = append(jobs, runner.Grid{
		Kind: runner.KindOccupancy, Archs: []string{"GF100"},
		Variants: withLabels("ablate-occupancy", occVariants), FixedSeed: true,
	}.Jobs()...)

	// Load curve: idle → saturated.
	var loadVariants []runner.Options
	for _, load := range []float64{0.005, 0.02, 0.1, 0.4} {
		loadVariants = append(loadVariants, runner.Options{
			Label: fmt.Sprintf("load=%g", load), OfferedLoad: load, Cycles: cycles,
		})
	}
	jobs = append(jobs, runner.Grid{
		Kind: runner.KindLoaded, Archs: []string{"GF100"},
		Variants: withLabels("load-curve", loadVariants),
		BaseSeed: 1, FixedSeed: true,
	}.Jobs()...)

	return jobs
}

// cmdBenchSuite runs the whole paper-reproduction grid on the parallel
// runner and prints an aggregate summary; -json/-csv dump the machine-
// readable ResultSet, which is byte-identical for every -j.
func cmdBenchSuite(args []string) error {
	fs := newFlags("bench-suite")
	jobs := jobsFlag(fs)
	engine := engineFlag(fs)
	par := parFlag(fs)
	quick := fs.Bool("quick", false, "CI smoke scale: tiny inputs, every section still covered")
	jsonOut := fs.Bool("json", false, "write the ResultSet as JSON to stdout")
	csvOut := fs.Bool("csv", false, "write the ResultSet as long-form CSV to stdout")
	quiet := fs.Bool("quiet", false, "suppress per-job progress on stderr")
	cpuProf := fs.String("cpuprofile", "", "write a CPU profile to this file (inspect with `go tool pprof`)")
	memProf := fs.String("memprofile", "", "write an allocation profile to this file at exit")
	cacheFl := cacheFlags(fs)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *jsonOut && *csvOut {
		return usagef("bench-suite: -json and -csv are mutually exclusive")
	}
	exec, err := cacheFl.exec()
	if err != nil {
		return err
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "bench-suite:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the final live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "bench-suite:", err)
			}
		}()
	}

	list := suiteJobs(*quick)
	start := time.Now()
	set, err := runJobsExec(list, *jobs, !*quiet, *engine, *par, exec)
	if err != nil {
		// Partial failures still produce the summary below; hard
		// cancellation aborts.
		if set == nil || len(set.Results) == 0 {
			return err
		}
	}
	wall := time.Since(start)

	switch {
	case *jsonOut:
		if werr := set.WriteJSON(os.Stdout); werr != nil {
			return werr
		}
	case *csvOut:
		if werr := set.WriteCSV(os.Stdout); werr != nil {
			return werr
		}
	default:
		set.SummaryTable().Render(os.Stdout)
	}
	fmt.Fprintf(os.Stderr, "bench-suite: %d jobs, wall %s, job-time sum %s, workers %d\n",
		len(set.Results), wall.Round(time.Millisecond),
		set.TotalElapsed().Round(time.Millisecond), runner.New(*jobs).EffectiveWorkers())
	return err
}
