package main

import (
	"encoding/json"
	"os"
	"testing"

	"gpulat/internal/runner"
)

// TestExitCodeClassification pins the CLI contract main applies to
// every subcommand error: usage errors exit 2, runtime failures exit 1.
func TestExitCodeClassification(t *testing.T) {
	if got := exitCode(nil); got != 0 {
		t.Errorf("nil → %d, want 0", got)
	}
	if got := exitCode(usagef("bad flag")); got != 2 {
		t.Errorf("usage error → %d, want 2", got)
	}
	if got := exitCode(os.ErrNotExist); got != 1 {
		t.Errorf("runtime error → %d, want 1", got)
	}
	if got := exitCode(errFlagReported); got != 2 {
		t.Errorf("flag-reported error → %d, want 2", got)
	}
}

// TestCoRunUsageErrorsExitTwo covers the corun bad-invocation paths:
// every axis typo must classify as a usage error (exit 2) before any
// simulation starts.
func TestCoRunUsageErrorsExitTwo(t *testing.T) {
	for name, args := range map[string][]string{
		"bad kernel":     {"-pairs", "no-such-kernel:copy"},
		"bad kernel b":   {"-pairs", "gather:no-such-kernel"},
		"malformed pair": {"-pairs", "gather"},
		"bad placement":  {"-placements", "diagonal"},
		"bad arch":       {"-archs", "RTX9090"},
		"bad engine":     {"-engine", "warp9"},
		"bad par":        {"-par", "0"},
		"json and csv":   {"-json", "-csv"},
	} {
		err := cmdCoRun(args)
		if err == nil {
			t.Errorf("%s: accepted", name)
			continue
		}
		if got := exitCode(err); got != 2 {
			t.Errorf("%s: exit %d, want 2 (%v)", name, got, err)
		}
	}
}

// TestBenchSuiteUsageErrorsExitTwo covers bench-suite's bad-invocation
// paths.
func TestBenchSuiteUsageErrorsExitTwo(t *testing.T) {
	for name, args := range map[string][]string{
		"bad engine":   {"-engine", "tachyon"},
		"bad par":      {"-par", "-3"},
		"json and csv": {"-json", "-csv"},
		"bad flag":     {"-definitely-not-a-flag"},
	} {
		err := cmdBenchSuite(args)
		if err == nil {
			t.Errorf("%s: accepted", name)
			continue
		}
		if got := exitCode(err); got != 2 {
			t.Errorf("%s: exit %d, want 2 (%v)", name, got, err)
		}
	}
}

// TestSubmitUsageErrorsExitTwo covers the service client's
// bad-invocation paths (no server needed: they fail before any I/O).
func TestSubmitUsageErrorsExitTwo(t *testing.T) {
	for name, args := range map[string][]string{
		"json and csv":   {"-json", "-csv"},
		"suite and jobs": {"-suite", "-jobs", "x.json"},
		"nothing to do":  {"-quiet"},
	} {
		err := cmdSubmit(args)
		if err == nil {
			t.Errorf("%s: accepted", name)
			continue
		}
		if got := exitCode(err); got != 2 {
			t.Errorf("%s: exit %d, want 2 (%v)", name, got, err)
		}
	}
}

// TestServeCoordinatorRejectsStationFlags covers serve's coordinator
// mode refusing station-only flags (exit 2, before any network I/O):
// caches, workers, engines, and the per-simulation -par width all
// belong to the backends.
func TestServeCoordinatorRejectsStationFlags(t *testing.T) {
	for name, args := range map[string][]string{
		"par":       {"-backends", "127.0.0.1:1", "-par", "8"},
		"engine":    {"-backends", "127.0.0.1:1", "-engine", "tick"},
		"jobs":      {"-backends", "127.0.0.1:1", "-j", "4"},
		"cache dir": {"-backends", "127.0.0.1:1", "-cache-dir", "/tmp/x"},
		"bad par":   {"-par", "0"},
	} {
		err := cmdServe(args)
		if err == nil {
			t.Errorf("%s: accepted", name)
			continue
		}
		if got := exitCode(err); got != 2 {
			t.Errorf("%s: exit %d, want 2 (%v)", name, got, err)
		}
	}
}

// TestSimulationErrorsExitOne drives the shared runJobs path with jobs
// that fail at execution time (not at flag parsing): the aggregate
// error must classify as a runtime failure, exit 1 — for corun and
// bench-suite alike, since both funnel through runJobs.
func TestSimulationErrorsExitOne(t *testing.T) {
	// A corun job missing its second kernel fails inside the executor.
	set, err := runJobs([]runner.Job{
		{Kind: runner.KindCoRun, Arch: "GF106", Kernel: "gather", Seed: 1,
			Options: runner.Options{TestScale: true}},
	}, 1, false, "")
	if err == nil {
		t.Fatal("failing job produced no error")
	}
	if got := exitCode(err); got != 1 {
		t.Errorf("simulation error → exit %d, want 1 (%v)", got, err)
	}
	if set == nil || len(set.Results) != 1 || !set.Results[0].Failed() {
		t.Errorf("partial results not preserved: %+v", set)
	}

	// Same classification for a bench-suite-shaped dynamic job with an
	// unknown workload: resolved at execution, not flag parsing.
	_, err = runJobs([]runner.Job{
		{Kind: runner.KindDynamic, Arch: "GF106", Kernel: "no-such-kernel", Seed: 1,
			Options: runner.Options{TestScale: true}},
	}, 1, false, "")
	if err == nil {
		t.Fatal("unknown workload produced no error")
	}
	if got := exitCode(err); got != 1 {
		t.Errorf("unknown workload → exit %d, want 1 (%v)", got, err)
	}
}

// TestListJSONCatalog asserts the machine-readable catalog names every
// axis a service client needs to build valid job specs.
func TestListJSONCatalog(t *testing.T) {
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	listErr := cmdList([]string{"-json"})
	w.Close()
	os.Stdout = old
	if listErr != nil {
		t.Fatal(listErr)
	}
	var info struct {
		Version        string   `json:"version"`
		Kinds          []string `json:"kinds"`
		Architectures  []any    `json:"architectures"`
		Workloads      []string `json:"workloads"`
		Engines        []string `json:"engines"`
		WarpSchedulers []string `json:"warp_schedulers"`
		DRAMSchedulers []string `json:"dram_schedulers"`
		Placements     []string `json:"placements"`
	}
	if err := json.NewDecoder(r).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if info.Version == "" || len(info.Kinds) != 6 || len(info.Architectures) != 5 ||
		len(info.Workloads) < 9 || len(info.Engines) != 2 ||
		len(info.WarpSchedulers) != 2 || len(info.DRAMSchedulers) != 3 ||
		len(info.Placements) != 2 {
		t.Fatalf("catalog incomplete: %+v", info)
	}
	if info.Workloads[0] != "bfs" {
		t.Fatalf("bfs missing from workloads: %v", info.Workloads)
	}
}
