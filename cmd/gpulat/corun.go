package main

import (
	"fmt"
	"os"
	"strings"

	"gpulat/internal/config"
	"gpulat/internal/kernels"
	"gpulat/internal/runner"
	"gpulat/internal/stats"
)

// parsePairs parses a comma-separated list of A:B workload pairs.
func parsePairs(s string) ([][2]string, error) {
	var out [][2]string
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		a, b, ok := strings.Cut(part, ":")
		if !ok || a == "" || b == "" {
			return nil, usagef("bad pair %q (want workloadA:workloadB)", part)
		}
		out = append(out, [2]string{a, b})
	}
	return out, nil
}

// cmdCoRun sweeps concurrent-kernel interference: every requested
// workload pair co-runs on independent streams under every placement
// policy on every architecture, and the per-kernel latency-exposure
// metrics land in the standard ResultSet CSV/JSON export. All variants
// of one pair share the pair's seed, so shared-vs-spatial rows differ
// only in placement.
func cmdCoRun(args []string) error {
	fs := newFlags("corun")
	archs := fs.String("archs", "GF100", "comma-separated architecture presets")
	pairs := fs.String("pairs", "pchase:copy,gather:copy",
		"comma-separated workloadA:workloadB pairs (A and B co-run on their own streams)")
	placements := fs.String("placements", "shared,spatial", "comma-separated placement policies")
	buckets := fs.Int("buckets", 24, "latency buckets for the per-kernel exposure analyses")
	quick := fs.Bool("quick", false, "CI smoke scale: tiny inputs")
	seed := fs.Uint64("seed", runner.DefaultBaseSeed, "input seed (shared by every variant of a pair)")
	jsonOut := fs.Bool("json", false, "write the ResultSet as JSON to stdout")
	csvOut := fs.Bool("csv", false, "write the ResultSet as long-form CSV to stdout")
	quiet := fs.Bool("quiet", false, "suppress per-job progress on stderr")
	jobs := jobsFlag(fs)
	engine := engineFlag(fs)
	par := parFlag(fs)
	cacheFl := cacheFlags(fs)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *jsonOut && *csvOut {
		return usagef("corun: -json and -csv are mutually exclusive")
	}
	exec, err := cacheFl.exec()
	if err != nil {
		return err
	}

	pairList, err := parsePairs(*pairs)
	if err != nil {
		return err
	}
	// Validate the whole cross product up front: a typo in any axis is a
	// bad invocation (exit 2), not a mid-sweep simulation failure.
	catalog := map[string]bool{}
	for _, k := range kernels.CatalogNames() {
		catalog[k] = true
	}
	for _, pair := range pairList {
		for _, k := range pair {
			if !catalog[k] {
				return usagef("corun: unknown workload %q (have %s)",
					k, strings.Join(kernels.CatalogNames(), ", "))
			}
		}
	}
	var archList []string
	for _, arch := range strings.Split(*archs, ",") {
		arch = strings.TrimSpace(arch)
		if _, err := mustConfig(arch); err != nil {
			return usagef("%v", err)
		}
		archList = append(archList, arch)
	}
	var placeList []string
	for _, p := range strings.Split(*placements, ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			return usagef("empty placement in -placements %q", *placements)
		}
		if _, err := config.ParsePlacement(p); err != nil {
			return usagef("%v", err)
		}
		placeList = append(placeList, p)
	}

	var list []runner.Job
	for _, arch := range archList {
		for _, pair := range pairList {
			for _, place := range placeList {
				list = append(list, runner.Job{
					Kind:   runner.KindCoRun,
					Arch:   arch,
					Kernel: pair[0],
					Seed:   *seed,
					Options: runner.Options{
						Label:     pair[0] + "+" + pair[1] + "/" + place,
						KernelB:   pair[1],
						Overrides: config.Overrides{Placement: place},
						Buckets:   *buckets,
						TestScale: *quick,
					},
				})
			}
		}
	}

	set, err := runJobsExec(list, *jobs, !*quiet, *engine, *par, exec)
	if err != nil {
		return err
	}
	switch {
	case *jsonOut:
		return set.WriteJSON(os.Stdout)
	case *csvOut:
		return set.WriteCSV(os.Stdout)
	}

	// The table renders from metrics and the job spec, never from the
	// typed payload: cache-served results carry only metrics.
	tb := stats.NewTable("arch", "pair", "placement", "cycles",
		"A resident", "A exposed%", "B resident", "B exposed%")
	for _, r := range set.Results {
		metric := func(name string) float64 {
			v, _ := r.Metric(name)
			return v
		}
		place := r.Job.Options.Overrides.Placement
		if place == "" {
			place = "shared"
		}
		tb.AddRow(r.Job.Arch, r.Job.Kernel+"+"+r.Job.Options.KernelB, place,
			uint64(metric("cycles")),
			uint64(metric("a_cycles_resident")),
			fmt.Sprintf("%.1f", metric("a_exposed_pct")),
			uint64(metric("b_cycles_resident")),
			fmt.Sprintf("%.1f", metric("b_exposed_pct")))
	}
	fmt.Println("Concurrent-kernel interference — per-kernel residency and exposed latency")
	tb.Render(os.Stdout)
	fmt.Println("\n(A exposed% = share of A's load latency no resident warp could cover;")
	fmt.Println(" shared placement lets B's warps hide A's waits, spatial isolates the SMs)")
	return nil
}
