package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"gpulat/internal/runner"
	"gpulat/internal/service"
)

// cmdSubmit is the service client: it sends a job list to a running
// `gpulat serve`, waits for completion, and renders the reassembled
// ResultSet exactly as the local sweep commands would — so a service
// round-trip of `-suite -quick -csv` byte-matches `bench-suite -quick
// -csv`, which `make service-determinism` enforces in CI.
func cmdSubmit(args []string) error {
	fs := newFlags("submit")
	addr := fs.String("addr", "http://127.0.0.1:8091", "service base URL")
	suite := fs.Bool("suite", false, "submit the bench-suite paper-reproduction grid")
	quick := fs.Bool("quick", false, "with -suite: CI smoke scale")
	jobsFile := fs.String("jobs", "", "submit jobs from a JSON file ('-' = stdin; a [<job>...] array or {\"jobs\": [...]} document)")
	wait := fs.Duration("wait", 15*time.Second, "how long to wait for the server to come up")
	jsonOut := fs.Bool("json", false, "write the ResultSet as JSON to stdout")
	csvOut := fs.Bool("csv", false, "write the ResultSet as long-form CSV to stdout")
	quiet := fs.Bool("quiet", false, "suppress the timing line on stderr")
	statsz := fs.Bool("statsz", false, "print the server's /v1/statsz document and exit")
	healthz := fs.Bool("healthz", false, "print the server's /v1/healthz document and exit")
	backendsz := fs.Bool("backendsz", false, "print a coordinator's /v1/backendsz document and exit")
	shard := fs.String("shard", "", "submit only shard i of n ('i/n'): the deterministic key-hash partition of the job list, for uncoordinated multi-submitter fan-out")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *jsonOut && *csvOut {
		return usagef("submit: -json and -csv are mutually exclusive")
	}

	// Resolve what to do before touching the network, so invocation
	// mistakes classify as usage errors even when no server is up.
	var jobs []runner.Job
	switch {
	case *statsz || *healthz || *backendsz:
		// no job list
	case *suite && *jobsFile != "":
		return usagef("submit: -suite and -jobs are mutually exclusive")
	case *suite:
		jobs = suiteJobs(*quick)
	case *jobsFile != "":
		var err error
		if jobs, err = readJobs(*jobsFile); err != nil {
			return err
		}
	default:
		return usagef("submit: nothing to submit (want -suite, -jobs, -statsz, -healthz, or -backendsz)")
	}
	if *shard != "" {
		index, count, err := parseShard(*shard)
		if err != nil {
			return err
		}
		if len(jobs) == 0 {
			return usagef("submit: -shard needs a job list (-suite or -jobs)")
		}
		jobs = runner.PartitionJobs(jobs, count)[index]
		if len(jobs) == 0 {
			fmt.Fprintf(os.Stderr, "submit: shard %s holds no jobs\n", *shard)
			return nil
		}
	}

	client := service.NewClient(*addr)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := client.WaitHealthy(ctx, *wait); err != nil {
		return err
	}

	switch {
	case *statsz:
		stats, err := client.Statsz(ctx)
		if err != nil {
			return err
		}
		return printJSON(stats)
	case *healthz:
		h, err := client.Healthz(ctx)
		if err != nil {
			return err
		}
		return printJSON(h)
	case *backendsz:
		b, err := client.Backendsz(ctx)
		if err != nil {
			return err
		}
		return printJSON(b)
	}

	start := time.Now()
	set, err := client.RunJobs(ctx, jobs)
	if err != nil {
		return err
	}
	wall := time.Since(start)
	switch {
	case *jsonOut:
		if err := set.WriteJSON(os.Stdout); err != nil {
			return err
		}
	case *csvOut:
		if err := set.WriteCSV(os.Stdout); err != nil {
			return err
		}
	default:
		set.SummaryTable().Render(os.Stdout)
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "submit: %d jobs via %s in %s\n",
			len(set.Results), *addr, wall.Round(time.Millisecond))
	}
	return set.Err()
}

// parseShard parses "-shard i/n" into (index, count), rejecting any
// trailing garbage ("1/2/4" must not silently run half the grid).
func parseShard(s string) (int, int, error) {
	is, ns, ok := strings.Cut(s, "/")
	if !ok {
		return 0, 0, usagef("submit: bad -shard %q (want i/n, e.g. 0/4)", s)
	}
	index, err1 := strconv.Atoi(is)
	count, err2 := strconv.Atoi(ns)
	if err1 != nil || err2 != nil {
		return 0, 0, usagef("submit: bad -shard %q (want i/n, e.g. 0/4)", s)
	}
	if count < 1 || index < 0 || index >= count {
		return 0, 0, usagef("submit: -shard %q out of range (want 0 <= i < n)", s)
	}
	return index, count, nil
}

func printJSON(v any) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// readJobs loads a job list from path: either a bare JSON array of jobs
// or a {"jobs": [...]} document ('-' reads stdin).
func readJobs(path string) ([]runner.Job, error) {
	var data []byte
	var err error
	if path == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(path)
	}
	if err != nil {
		return nil, err
	}
	trimmed := strings.TrimSpace(string(data))
	if strings.HasPrefix(trimmed, "[") {
		var jobs []runner.Job
		if err := json.Unmarshal(data, &jobs); err != nil {
			return nil, usagef("submit: bad job array in %s: %v", path, err)
		}
		return jobs, nil
	}
	var doc struct {
		Jobs []runner.Job `json:"jobs"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, usagef("submit: bad jobs document in %s: %v", path, err)
	}
	if len(doc.Jobs) == 0 {
		return nil, usagef("submit: %s names no jobs", path)
	}
	return doc.Jobs, nil
}
