package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"gpulat/internal/metrics"
	"gpulat/internal/runner"
	"gpulat/internal/service"
)

// loadgenReport is the committed BENCH_service.json shape: the first
// service-tier perf artifact. Everything here is either configuration
// or derived from request timings and /metrics scrapes.
type loadgenReport struct {
	Target     string  `json:"target"`
	Requests   int     `json:"requests"`
	Clients    int     `json:"clients"`
	UniqueJobs int     `json:"unique_jobs"`
	ZipfS      float64 `json:"zipf_s"`
	Seed       int64   `json:"seed"`

	WallSeconds float64 `json:"wall_seconds"`
	ServedQPS   float64 `json:"served_qps"`

	LatencySeconds latencyQuantiles `json:"latency_seconds"`
	Cache          cacheOutcome     `json:"cache"`
	HitCurve       []hitPoint       `json:"hit_curve,omitempty"`
}

type latencyQuantiles struct {
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P95  float64 `json:"p95"`
	P99  float64 `json:"p99"`
	Max  float64 `json:"max"`
}

// cacheOutcome folds the final /metrics scrapes: submissions observed
// at the target, how many were answered from a persistent cache
// (summed across the target and every -scrape-addrs endpoint, so a
// sharded tier's backend caches count), and how many deduped onto
// in-flight or finished keys.
type cacheOutcome struct {
	Submitted  float64 `json:"submitted"`
	CacheHits  float64 `json:"cache_hits"`
	Deduped    float64 `json:"deduped"`
	HitRatio   float64 `json:"hit_ratio"`
	DedupRatio float64 `json:"dedup_ratio"`
}

type hitPoint struct {
	TSeconds  float64 `json:"t_seconds"`
	Submitted float64 `json:"submitted"`
	CacheHits float64 `json:"cache_hits"`
	Deduped   float64 `json:"deduped"`
	HitRatio  float64 `json:"hit_ratio"`
}

// cmdLoadgen replays a dedup-heavy job mix against a running station or
// sharded coordinator, scrapes /metrics while doing it, and emits the
// BENCH_service.json baseline. The job population is deterministic
// (fixed seed → fixed keys), and requests are drawn Zipf-distributed
// over it so a handful of hot jobs dominate — the load shape the dedup
// and cache layers exist for.
func cmdLoadgen(args []string) error {
	fs := newFlags("loadgen")
	addr := fs.String("addr", "http://127.0.0.1:8091", "target service base URL")
	requests := fs.Int("requests", 200, "total requests to replay")
	clients := fs.Int("clients", 4, "concurrent client goroutines")
	unique := fs.Int("unique", 24, "distinct jobs in the population")
	zipfS := fs.Float64("zipf", 1.3, "Zipf skew of the request mix (>1; larger = hotter head)")
	seed := fs.Int64("seed", 1, "request-mix seed (population keys are seed-independent)")
	accesses := fs.Int("accesses", 16, "timed loads per chase job (simulation cost knob)")
	scrapeEvery := fs.Duration("scrape", 500*time.Millisecond, "interval between /metrics scrapes during the run")
	scrapeAddrs := fs.String("scrape-addrs", "", "comma-separated extra /metrics endpoints (a coordinator's backends, where the caches live)")
	out := fs.String("out", "BENCH_service.json", "report path (\"-\" for stdout)")
	minHits := fs.Int("min-hits", 0, "fail unless at least this many cache hits were observed (smoke gate)")
	wait := fs.Duration("wait", 10*time.Second, "how long to wait for the target to become healthy")
	timeout := fs.Duration("timeout", 5*time.Minute, "overall run deadline")
	quiet := fs.Bool("quiet", false, "suppress the progress line on stderr")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *requests < 1 || *clients < 1 || *unique < 1 {
		return usagef("-requests, -clients, and -unique must be positive")
	}
	if *zipfS <= 1 {
		return usagef("-zipf must be > 1 (got %g)", *zipfS)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	client := service.NewClient(*addr)
	client.Poll = 5 * time.Millisecond
	if err := client.WaitHealthy(ctx, *wait); err != nil {
		return err
	}

	// The scrape set: the target plus any explicitly named endpoints.
	endpoints := []string{strings.TrimRight(*addr, "/")}
	for _, a := range strings.Split(*scrapeAddrs, ",") {
		if a = strings.TrimSpace(a); a != "" {
			if !strings.Contains(a, "://") {
				a = "http://" + a
			}
			endpoints = append(endpoints, strings.TrimRight(a, "/"))
		}
	}

	jobs := loadgenPopulation(*unique, *accesses)
	sequence := loadgenSequence(*requests, *unique, *zipfS, *seed)

	// Scraper: sample the cache-hit trajectory while the load runs.
	// Every scrape is Lint-validated — the loadgen run doubles as a
	// continuous exposition-format check against the live server.
	var curveMu sync.Mutex
	var curve []hitPoint
	start := time.Now()
	sample := func() error {
		point, err := scrapeEndpoints(ctx, endpoints)
		if err != nil {
			return err
		}
		point.TSeconds = time.Since(start).Seconds()
		curveMu.Lock()
		curve = append(curve, point)
		curveMu.Unlock()
		return nil
	}
	scrapeDone := make(chan struct{})
	scrapeStop := make(chan struct{})
	go func() {
		defer close(scrapeDone)
		ticker := time.NewTicker(*scrapeEvery)
		defer ticker.Stop()
		for {
			select {
			case <-scrapeStop:
				return
			case <-ticker.C:
				// Mid-run scrape failures are tolerated (the interesting
				// failures also break the final, mandatory scrape).
				_ = sample()
			}
		}
	}()

	// Replay: the request sequence is sharded round-robin over the
	// clients, each request timed end to end (submit + poll + fetch).
	latencies := make([]float64, len(sequence))
	errs := make([]error, *clients)
	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := c; i < len(sequence); i += *clients {
				job := jobs[sequence[i]]
				t0 := time.Now()
				set, err := client.RunJobs(ctx, []runner.Job{job})
				latencies[i] = time.Since(t0).Seconds()
				if err != nil {
					errs[c] = fmt.Errorf("loadgen: request %d (%s): %w", i, job.Name(), err)
					return
				}
				if r := set.Results[0]; r.Err != "" {
					errs[c] = fmt.Errorf("loadgen: request %d (%s) failed: %s", i, job.Name(), r.Err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)
	close(scrapeStop)
	<-scrapeDone
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	// Final scrape is mandatory: it provides the report's cache outcome
	// and proves the exposition stayed parseable under load.
	if err := sample(); err != nil {
		return fmt.Errorf("loadgen: final /metrics scrape: %w", err)
	}
	final := curve[len(curve)-1]

	sorted := append([]float64(nil), latencies...)
	sort.Float64s(sorted)
	mean := 0.0
	for _, v := range sorted {
		mean += v
	}
	mean /= float64(len(sorted))

	report := loadgenReport{
		Target:     *addr,
		Requests:   *requests,
		Clients:    *clients,
		UniqueJobs: *unique,
		ZipfS:      *zipfS,
		Seed:       *seed,

		WallSeconds: wall.Seconds(),
		ServedQPS:   float64(*requests) / wall.Seconds(),
		LatencySeconds: latencyQuantiles{
			Mean: mean,
			P50:  percentile(sorted, 0.50),
			P90:  percentile(sorted, 0.90),
			P95:  percentile(sorted, 0.95),
			P99:  percentile(sorted, 0.99),
			Max:  sorted[len(sorted)-1],
		},
		Cache: cacheOutcome{
			Submitted:  final.Submitted,
			CacheHits:  final.CacheHits,
			Deduped:    final.Deduped,
			HitRatio:   final.HitRatio,
			DedupRatio: ratio(final.Deduped, final.Submitted),
		},
		HitCurve: curve,
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *out == "-" {
		_, err = os.Stdout.Write(data)
	} else {
		err = os.WriteFile(*out, data, 0o644)
	}
	if err != nil {
		return err
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr,
			"loadgen: %d requests in %.2fs (%.1f qps), p50 %.1fms p99 %.1fms, cache hits %.0f dedup %.0f\n",
			*requests, wall.Seconds(), report.ServedQPS,
			report.LatencySeconds.P50*1000, report.LatencySeconds.P99*1000,
			final.CacheHits, final.Deduped)
	}
	if final.CacheHits < float64(*minHits) {
		return fmt.Errorf("loadgen: observed %.0f cache hits, want >= %d (is the cache cold, or the coordinator still holding warm states?)",
			final.CacheHits, *minHits)
	}
	return nil
}

// loadgenPopulation builds n distinct cheap pointer-chase jobs. Only
// key-relevant fields vary (Stride and Footprint — Label and Seed are
// excluded from runner.Job.Key), so the population's content keys are
// stable across loadgen invocations and the service caches carry over.
func loadgenPopulation(n, accesses int) []runner.Job {
	jobs := make([]runner.Job, n)
	for i := range jobs {
		stride := uint32(32) << (i % 5)
		footprint := stride * uint32(16+4*(i/5))
		jobs[i] = runner.Job{
			Kind: runner.KindChase, Arch: "GF100", Seed: 42,
			Options: runner.Options{
				Label:     fmt.Sprintf("loadgen-%03d", i),
				Stride:    stride,
				Footprint: footprint,
				Accesses:  accesses,
			},
		}
	}
	return jobs
}

// loadgenSequence draws the request mix: Zipf over the population, so
// rank 0 is requested far more often than the tail. Deterministic for a
// given (requests, unique, s, seed).
func loadgenSequence(requests, unique int, s float64, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, s, 1, uint64(unique-1))
	seq := make([]int, requests)
	for i := range seq {
		seq[i] = int(zipf.Uint64())
	}
	return seq
}

// scrapeEndpoints fetches and Lint-validates /metrics from every
// endpoint, folding the station counters into one hit point. Station
// cache hits are summed across all endpoints — on a sharded tier the
// caches live on the backends — while submitted/deduped are read from
// the first endpoint (the target the load was offered to).
func scrapeEndpoints(ctx context.Context, endpoints []string) (hitPoint, error) {
	var p hitPoint
	for i, ep := range endpoints {
		scrape, err := fetchMetrics(ctx, ep)
		if err != nil {
			return p, err
		}
		p.CacheHits += scrape.Sum("gpulat_station_cache_hits_total")
		if i == 0 {
			p.Submitted = scrape.Sum("gpulat_station_submitted_total")
			p.Deduped = scrape.Sum("gpulat_station_deduped_total")
		}
	}
	p.HitRatio = ratio(p.CacheHits, p.Submitted)
	return p, nil
}

// fetchMetrics GETs one /metrics endpoint, requires the exposition to
// pass the format validator, and parses it.
func fetchMetrics(ctx context.Context, base string) (*metrics.Scrape, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("loadgen: GET %s/metrics: HTTP %d", base, resp.StatusCode)
	}
	if err := metrics.Lint(body); err != nil {
		return nil, fmt.Errorf("loadgen: %s/metrics failed validation: %w", base, err)
	}
	return metrics.Parse(body)
}

func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p*float64(len(sorted)-1) + 0.5)
	return sorted[i]
}

func ratio(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return num / den
}
