// Command gpulat regenerates the tables and figures of "On Latency in
// GPU Throughput Microarchitectures" (ISPASS 2015) on the Go
// reimplementation of the paper's measurement infrastructure.
//
// Usage:
//
//	gpulat table1  [-accesses N] [-archs list]         Table I
//	gpulat sweep   [-arch A] [-strides s,..] [-footprints f,..]
//	gpulat fig1    [-arch A] [-kernel K] [-buckets N] [-csv]
//	gpulat fig2    [-arch A] [-kernel K] [-buckets N] [-csv]
//	gpulat ablate-dram   [-kernel K]         FR-FCFS vs FR-FCFS-cap vs FCFS
//	gpulat ablate-sched  [-kernel K]         LRR vs GTO
//	gpulat ablate-mshr   [-kernel K]         L1 MSHR sweep
//	gpulat ablate-occupancy                  latency hiding vs warps/SM
//	gpulat loadcurve                         latency vs offered load
//	gpulat simrun  [-arch A] [-kernel K] [-v]  stats dump
//	gpulat export  [-arch A] [-kernel K]     per-load records CSV
//	gpulat config  [-arch A]                 preset as editable JSON
//	gpulat list                              presets and kernels
//
// Every -arch flag accepts a preset name or "file:<path>" for a JSON
// configuration produced by `gpulat config`.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"gpulat/internal/config"
	"gpulat/internal/core"
	"gpulat/internal/dram"
	"gpulat/internal/gpu"
	"gpulat/internal/kernels"
	"gpulat/internal/sim"
	"gpulat/internal/sm"
	"gpulat/internal/stats"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "table1":
		err = cmdTable1(args)
	case "sweep":
		err = cmdSweep(args)
	case "fig1":
		err = cmdFig(args, false)
	case "fig2":
		err = cmdFig(args, true)
	case "ablate-dram":
		err = cmdAblateDRAM(args)
	case "ablate-sched":
		err = cmdAblateSched(args)
	case "ablate-mshr":
		err = cmdAblateMSHR(args)
	case "ablate-occupancy":
		err = cmdAblateOccupancy(args)
	case "loadcurve":
		err = cmdLoadCurve(args)
	case "simrun":
		err = cmdSimRun(args)
	case "export":
		err = cmdExport(args)
	case "config":
		err = cmdConfig(args)
	case "list":
		err = cmdList(args)
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "gpulat: unknown command %q\n\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "gpulat:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `gpulat — reproduce "On Latency in GPU Throughput Microarchitectures"

commands:
  table1        static latencies of all four generations (Table I)
  sweep         full stride×footprint pointer-chase surface (CSV)
  fig1          per-bucket latency breakdown by pipeline stage (Figure 1)
  fig2          exposed vs hidden load latency per bucket (Figure 2)
  ablate-dram   DRAM scheduler ablation: FR-FCFS vs FCFS
  ablate-sched  warp scheduler ablation: LRR vs GTO
  ablate-mshr   L1 MSHR capacity ablation
  ablate-occupancy  latency hiding vs resident warps per SM
  loadcurve     memory-system latency vs offered load (idle → saturated)
  simrun        run a workload and dump device statistics
  export        run a workload and dump per-load records as CSV
  config        dump a preset as editable JSON (use with -arch file:<path>)
  list          available architectures and workloads
`)
}

// mustConfig resolves an architecture preset name or a "file:<path>"
// JSON configuration.
func mustConfig(name string) (gpu.Config, error) {
	return config.ByNameOrFile(name)
}

func cmdTable1(args []string) error {
	fs := flag.NewFlagSet("table1", flag.ExitOnError)
	accesses := fs.Int("accesses", 256, "timed loads per measurement point")
	archs := fs.String("archs", "GT200,GF106,GK104,GM107", "comma-separated presets")
	fs.Parse(args)

	opt := core.DefaultStaticOptions()
	opt.Accesses = *accesses
	var rows []core.StaticResult
	for _, name := range strings.Split(*archs, ",") {
		cfg, err := mustConfig(strings.TrimSpace(name))
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "measuring %s...\n", cfg.Name)
		res, err := core.MeasureStatic(cfg, opt)
		if err != nil {
			return err
		}
		rows = append(rows, res)
	}
	fmt.Println("Table I — latencies of memory loads through the global memory pipeline")
	fmt.Println("(simulated reproduction; paper values: GT200 DRAM 440, GF106 45/310/685,")
	fmt.Println(" GK104 30/175/300, GM107 194/350)")
	fmt.Println()
	core.TableI(os.Stdout, rows)
	return nil
}

func parseU32List(s string) ([]uint32, error) {
	var out []uint32
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseUint(strings.TrimSpace(part), 10, 32)
		if err != nil {
			return nil, err
		}
		out = append(out, uint32(v))
	}
	return out, nil
}

func cmdSweep(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	arch := fs.String("arch", "GF106", "architecture preset")
	strides := fs.String("strides", "128,256,512,1024", "strides in bytes")
	foot := fs.String("footprints", "8192,16384,32768,65536,131072,262144,524288,1048576,4194304", "footprints in bytes")
	accesses := fs.Int("accesses", 128, "timed loads per point")
	detect := fs.Bool("detect", false, "detect hierarchy-level plateaus instead of raw CSV")
	fs.Parse(args)

	cfg, err := mustConfig(*arch)
	if err != nil {
		return err
	}
	st, err := parseU32List(*strides)
	if err != nil {
		return err
	}
	fp, err := parseU32List(*foot)
	if err != nil {
		return err
	}
	opt := core.DefaultStaticOptions()
	opt.Accesses = *accesses
	points, err := core.Sweep(cfg, st, fp, opt)
	if err != nil {
		return err
	}
	if *detect {
		for _, stride := range st {
			levels := core.DetectLevels(points, stride, 0.08)
			core.RenderLevels(os.Stdout, cfg.Name, stride, levels)
		}
		return nil
	}
	fmt.Println("arch,stride,footprint,mean_latency")
	for _, p := range points {
		fmt.Printf("%s,%d,%d,%.1f\n", cfg.Name, p.Stride, p.Footprint, p.MeanLat)
	}
	return nil
}

// runKernelArg executes the selected workload with instrumentation.
func runKernelArg(cfg gpu.Config, kernel string, vertices int, seed uint64) (*core.DynamicResult, error) {
	if kernel == "bfs" {
		g := kernels.GenScaleFree(vertices, 4, seed)
		mk, err := kernels.BFS(kernels.BFSConfig{Graph: g, Source: 0, BlockDim: 128})
		if err != nil {
			return nil, err
		}
		return core.RunDynamicMulti(cfg, mk)
	}
	wl, err := kernels.NewByName(kernel, kernels.ScaleExperiment, seed)
	if err != nil {
		return nil, err
	}
	return core.RunDynamic(cfg, wl)
}

func cmdFig(args []string, exposure bool) error {
	name := "fig1"
	if exposure {
		name = "fig2"
	}
	fs := flag.NewFlagSet(name, flag.ExitOnError)
	arch := fs.String("arch", "GF100", "architecture preset")
	kernel := fs.String("kernel", "bfs", "workload (bfs or a catalog kernel)")
	buckets := fs.Int("buckets", 48, "latency buckets")
	vertices := fs.Int("vertices", 1<<13, "BFS graph size")
	seed := fs.Uint64("seed", 42, "input seed")
	csv := fs.Bool("csv", false, "emit CSV instead of a table")
	chart := fs.Bool("chart", false, "draw an ASCII stacked-bar chart like the paper's figure")
	fs.Parse(args)

	cfg, err := mustConfig(*arch)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "running %s on %s...\n", *kernel, cfg.Name)
	res, err := runKernelArg(cfg, *kernel, *vertices, *seed)
	if err != nil {
		return err
	}
	if exposure {
		rep := res.Exposure(*buckets)
		switch {
		case *chart:
			rep.RenderChart(os.Stdout, 25)
		case *csv:
			rep.RenderCSV(os.Stdout)
		default:
			rep.Render(os.Stdout)
		}
		return nil
	}
	rep := res.Breakdown(*buckets)
	switch {
	case *chart:
		rep.RenderChart(os.Stdout, 25)
	case *csv:
		rep.RenderCSV(os.Stdout)
	default:
		rep.Render(os.Stdout)
	}
	return nil
}

func cmdAblateDRAM(args []string) error {
	fs := flag.NewFlagSet("ablate-dram", flag.ExitOnError)
	arch := fs.String("arch", "GF100", "architecture preset")
	kernel := fs.String("kernel", "bfs", "workload")
	vertices := fs.Int("vertices", 1<<13, "BFS graph size")
	fs.Parse(args)

	// Two views: (a) synthetic traffic near the saturation knee via the
	// memory-subsystem testbench — the controlled latency measurement;
	// (b) the end-to-end workload, where the scheduler matters only when
	// DRAM is the bottleneck.
	tbSynth := stats.NewTable("scheduler", "mean lat", "p99 lat", "achieved/port")
	for _, sched := range []dram.SchedPolicy{dram.FRFCFS, dram.FRFCFSCap, dram.FCFS} {
		cfg, err := mustConfig(*arch)
		if err != nil {
			return err
		}
		cfg.Partition.DRAM.Scheduler = sched
		pts, err := core.LoadedLatency(cfg, []float64{0.04}, core.LoadedOptions{Cycles: 30_000})
		if err != nil {
			return err
		}
		tbSynth.AddRow(sched.String(), pts[0].MeanLatency, pts[0].P99Latency,
			fmt.Sprintf("%.3f", pts[0].AchievedLoad))
	}
	fmt.Printf("DRAM scheduler ablation — synthetic random traffic near saturation on %s\n", *arch)
	tbSynth.Render(os.Stdout)
	fmt.Println()

	tb := stats.NewTable("scheduler", "cycles", "IPC", "mean load lat", "p99 load lat")
	for _, sched := range []dram.SchedPolicy{dram.FRFCFS, dram.FRFCFSCap, dram.FCFS} {
		cfg, err := mustConfig(*arch)
		if err != nil {
			return err
		}
		cfg.Partition.DRAM.Scheduler = sched
		res, err := runKernelArg(cfg, *kernel, *vertices, 42)
		if err != nil {
			return err
		}
		sum := summarizeLoads(res)
		tb.AddRow(sched.String(), uint64(res.Cycles), fmt.Sprintf("%.3f", res.IPC()),
			sum.Mean, sum.P99)
	}
	fmt.Printf("DRAM scheduler ablation — %s on %s\n", *kernel, *arch)
	tb.Render(os.Stdout)
	return nil
}

func cmdAblateSched(args []string) error {
	fs := flag.NewFlagSet("ablate-sched", flag.ExitOnError)
	arch := fs.String("arch", "GF100", "architecture preset")
	kernel := fs.String("kernel", "bfs", "workload")
	vertices := fs.Int("vertices", 1<<13, "BFS graph size")
	fs.Parse(args)

	tb := stats.NewTable("scheduler", "cycles", "IPC", "exposed%", "loads>50% exposed")
	for _, sched := range []sm.SchedPolicy{sm.LRR, sm.GTO} {
		cfg, err := mustConfig(*arch)
		if err != nil {
			return err
		}
		cfg.SM.Scheduler = sched
		res, err := runKernelArg(cfg, *kernel, *vertices, 42)
		if err != nil {
			return err
		}
		er := res.Exposure(24)
		tb.AddRow(sched.String(), uint64(res.Cycles), fmt.Sprintf("%.3f", res.IPC()),
			er.OverallExposedPct(), er.MostlyExposedPct())
	}
	fmt.Printf("Warp scheduler ablation — %s on %s\n", *kernel, *arch)
	tb.Render(os.Stdout)
	return nil
}

func cmdAblateMSHR(args []string) error {
	fs := flag.NewFlagSet("ablate-mshr", flag.ExitOnError)
	arch := fs.String("arch", "GF100", "architecture preset")
	kernel := fs.String("kernel", "bfs", "workload")
	vertices := fs.Int("vertices", 1<<13, "BFS graph size")
	fs.Parse(args)

	tb := stats.NewTable("L1 MSHRs", "cycles", "IPC", "mean load lat", "p99 load lat")
	for _, mshrs := range []int{4, 8, 16, 32, 64} {
		cfg, err := mustConfig(*arch)
		if err != nil {
			return err
		}
		cfg.SM.L1.MSHREntries = mshrs
		res, err := runKernelArg(cfg, *kernel, *vertices, 42)
		if err != nil {
			return err
		}
		sum := summarizeLoads(res)
		tb.AddRow(mshrs, uint64(res.Cycles), fmt.Sprintf("%.3f", res.IPC()),
			sum.Mean, sum.P99)
	}
	fmt.Printf("L1 MSHR ablation — %s on %s\n", *kernel, *arch)
	tb.Render(os.Stdout)
	return nil
}

func cmdAblateOccupancy(args []string) error {
	fs := flag.NewFlagSet("ablate-occupancy", flag.ExitOnError)
	arch := fs.String("arch", "GF100", "architecture preset")
	vertices := fs.Int("vertices", 1<<13, "BFS graph size")
	fs.Parse(args)

	cfg, err := mustConfig(*arch)
	if err != nil {
		return err
	}
	build := func() (*kernels.MultiKernel, error) {
		g := kernels.GenScaleFree(*vertices, 4, 42)
		return kernels.BFS(kernels.BFSConfig{Graph: g, Source: 0, BlockDim: 128})
	}
	points, err := core.OccupancySweep(cfg, []int{4, 8, 16, 32, 48}, build)
	if err != nil {
		return err
	}
	core.RenderOccupancy(os.Stdout, "bfs", cfg.Name, points)
	return nil
}

func cmdLoadCurve(args []string) error {
	fs := flag.NewFlagSet("loadcurve", flag.ExitOnError)
	arch := fs.String("arch", "GF100", "architecture preset")
	cycles := fs.Int("cycles", 50_000, "measurement cycles per point")
	fs.Parse(args)

	cfg, err := mustConfig(*arch)
	if err != nil {
		return err
	}
	loads := []float64{0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.4}
	opt := core.LoadedOptions{Cycles: sim.Cycle(*cycles)}
	points, err := core.LoadedLatency(cfg, loads, opt)
	if err != nil {
		return err
	}
	core.RenderLoadedCurve(os.Stdout, cfg.Name, points)
	return nil
}

func summarizeLoads(res *core.DynamicResult) stats.Summary {
	recs := res.Tracker.Records()
	xs := make([]float64, len(recs))
	for i, r := range recs {
		xs[i] = float64(r.InstTotal)
	}
	return stats.Summarize(xs)
}

func cmdSimRun(args []string) error {
	fs := flag.NewFlagSet("simrun", flag.ExitOnError)
	arch := fs.String("arch", "GF100", "architecture preset (or file:<path>)")
	kernel := fs.String("kernel", "vecadd", "workload")
	vertices := fs.Int("vertices", 1<<13, "BFS graph size")
	verbose := fs.Bool("v", false, "dump per-SM and per-partition counters")
	fs.Parse(args)

	cfg, err := mustConfig(*arch)
	if err != nil {
		return err
	}
	res, err := runKernelArg(cfg, *kernel, *vertices, 42)
	if err != nil {
		return err
	}
	sum := summarizeLoads(res)
	fmt.Printf("workload:        %s\n", res.Workload)
	fmt.Printf("architecture:    %s\n", res.Arch)
	fmt.Printf("cycles:          %d\n", res.Cycles)
	fmt.Printf("kernel launches: %d\n", res.Launches)
	fmt.Printf("instructions:    %d\n", res.Instructions)
	fmt.Printf("IPC:             %.3f\n", res.IPC())
	fmt.Printf("tracked loads:   %d\n", sum.Count)
	fmt.Printf("load latency:    mean %.1f  p50 %.0f  p90 %.0f  p99 %.0f  max %.0f\n",
		sum.Mean, sum.P50, sum.P90, sum.P99, sum.Max)
	er := res.Exposure(24)
	fmt.Printf("exposed latency: %.1f%% overall; %.1f%% of loads >50%% exposed\n",
		er.OverallExposedPct(), er.MostlyExposedPct())
	if *verbose {
		fmt.Println()
		dumpDeviceStats(cfg, res)
	}
	return nil
}

// dumpDeviceStats reruns the workload against a fresh device to collect
// per-component counters (the DynamicResult does not retain the device).
func dumpDeviceStats(cfg gpu.Config, res *core.DynamicResult) {
	// Rerun is cheap relative to interpretation value; determinism makes
	// it exact.
	g := gpu.NewWithObservers(cfg, nil, nil)
	var err error
	if res.Launches > 1 {
		gr := kernels.GenScaleFree(1<<13, 4, 42)
		mk, e := kernels.BFS(kernels.BFSConfig{Graph: gr, Source: 0, BlockDim: 128})
		if e != nil {
			return
		}
		_, _, err = kernels.RunMulti(g, mk)
	} else {
		var wl *kernels.Workload
		name := res.Workload
		if i := strings.IndexByte(name, '/'); i > 0 {
			name = name[:i]
		}
		wl, err = kernels.NewByName(name, kernels.ScaleExperiment, 42)
		if err == nil {
			_, err = kernels.Run(g, wl)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "stats rerun:", err)
		return
	}
	smTab := stats.NewTable("SM", "inst", "loads", "stores", "L1 hit", "L1 miss", "merged", "blocks")
	for _, s := range g.SMs() {
		st := s.Stats()
		if st.InstIssued == 0 {
			continue
		}
		smTab.AddRow(s.Config().ID, st.InstIssued, st.LoadsIssued, st.StoresIssued,
			st.L1Hits, st.L1Misses, st.L1MergedMisses, st.BlocksRetired)
	}
	smTab.Render(os.Stdout)
	fmt.Println()
	pTab := stats.NewTable("part", "arrivals", "L2 hit", "L2 miss", "stalls", "wb", "row hit", "row conf", "dram sched")
	for i, p := range g.Partitions() {
		ps := p.Stats()
		ds := p.DRAM().Stats()
		pTab.AddRow(i, ps.Arrivals, ps.L2Hits, ps.L2Misses, ps.L2Stalls,
			ps.Writebacks, ds.RowHits, ds.RowConflicts, ds.Scheduled)
	}
	pTab.Render(os.Stdout)
}

func cmdExport(args []string) error {
	fs := flag.NewFlagSet("export", flag.ExitOnError)
	arch := fs.String("arch", "GF100", "architecture preset")
	kernel := fs.String("kernel", "bfs", "workload")
	vertices := fs.Int("vertices", 1<<13, "BFS graph size")
	fs.Parse(args)

	cfg, err := mustConfig(*arch)
	if err != nil {
		return err
	}
	res, err := runKernelArg(cfg, *kernel, *vertices, 42)
	if err != nil {
		return err
	}
	return core.WriteRecordsCSV(os.Stdout, res.Tracker.Records())
}

func cmdConfig(args []string) error {
	fs := flag.NewFlagSet("config", flag.ExitOnError)
	arch := fs.String("arch", "GF100", "architecture preset (or file:<path>)")
	fs.Parse(args)
	cfg, err := mustConfig(*arch)
	if err != nil {
		return err
	}
	data, err := config.ToJSON(cfg)
	if err != nil {
		return err
	}
	fmt.Println(string(data))
	return nil
}

func cmdList(args []string) error {
	fmt.Println("architectures:")
	for _, a := range config.Names() {
		cfg, _ := config.ByName(a)
		fmt.Printf("  %-7s %2d SMs, %d partitions\n", a, cfg.NumSMs, cfg.NumPartitions)
	}
	fmt.Println("workloads: bfs (dynamic analysis),", strings.Join(kernels.CatalogNames(), ", "))
	return nil
}
