// Command gpulat regenerates the tables and figures of "On Latency in
// GPU Throughput Microarchitectures" (ISPASS 2015) on the Go
// reimplementation of the paper's measurement infrastructure.
//
// Usage:
//
//	gpulat table1  [-accesses N] [-archs list] [-j N]    Table I
//	gpulat sweep   [-arch A] [-strides s,..] [-footprints f,..] [-j N]
//	gpulat fig1    [-arch A] [-kernel K] [-buckets N] [-csv]
//	gpulat fig2    [-arch A] [-kernel K] [-buckets N] [-csv]
//	gpulat ablate-dram   [-kernel K] [-j N]    FR-FCFS vs FR-FCFS-cap vs FCFS
//	gpulat ablate-sched  [-kernel K] [-j N]    LRR vs GTO
//	gpulat ablate-mshr   [-kernel K] [-j N]    L1 MSHR sweep
//	gpulat ablate-occupancy [-j N]             latency hiding vs warps/SM
//	gpulat load-curve    [-j N]                latency vs offered load
//	gpulat corun   [-pairs a:b,..] [-placements p,..] [-j N]   interference
//	gpulat bench-suite   [-j N] [-quick] [-json] [-csv]  full paper grid
//	gpulat simrun  [-arch A] [-kernel K] [-v]  stats dump
//	gpulat export  [-arch A] [-kernel K]       per-load records CSV
//	gpulat config  [-arch A]                   preset as editable JSON
//	gpulat list                                presets and kernels
//
// Every -arch flag accepts a preset name or "file:<path>" for a JSON
// configuration produced by `gpulat config`. Every sweep-shaped command
// takes -j N to bound the experiment worker pool (default GOMAXPROCS);
// per-job seeding is deterministic, so -j 1 and -j 8 produce identical
// results.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"

	"gpulat/internal/config"
	"gpulat/internal/gpu"
	"gpulat/internal/runner"
	"gpulat/internal/service"
	"gpulat/internal/sim"
)

// usageError marks a bad-invocation failure so main can exit 2 (usage)
// instead of 1 (runtime error), mirroring flag's convention.
type usageError struct{ error }

func usagef(format string, args ...any) error {
	return usageError{fmt.Errorf(format, args...)}
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	run, ok := commands()[cmd]
	if !ok {
		if cmd == "-h" || cmd == "--help" || cmd == "help" {
			usage()
			return
		}
		fmt.Fprintf(os.Stderr, "gpulat: unknown command %q\n\n", cmd)
		usage()
		os.Exit(2)
	}
	// Uniform exit-code hygiene: every subcommand returns its failure
	// instead of exiting; errors go to stderr; -h exits 0, usage errors
	// exit 2, runtime failures exit 1.
	if err := run(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		if !errors.Is(err, errFlagReported) {
			fmt.Fprintln(os.Stderr, "gpulat:", err)
		}
		os.Exit(exitCode(err))
	}
}

// exitCode maps a subcommand's error to the CLI contract: 0 success
// (including -h), 2 bad invocation, 1 runtime failure. Tests assert
// command error paths against this single classifier.
func exitCode(err error) int {
	if err == nil || errors.Is(err, flag.ErrHelp) {
		return 0
	}
	var ue usageError
	if errors.As(err, &ue) {
		return 2
	}
	return 1
}

func commands() map[string]func([]string) error {
	return map[string]func([]string) error{
		"table1":           cmdTable1,
		"sweep":            cmdSweep,
		"fig1":             func(a []string) error { return cmdFig(a, false) },
		"fig2":             func(a []string) error { return cmdFig(a, true) },
		"ablate-dram":      cmdAblateDRAM,
		"ablate-sched":     cmdAblateSched,
		"ablate-mshr":      cmdAblateMSHR,
		"ablate-occupancy": cmdAblateOccupancy,
		"load-curve":       cmdLoadCurve,
		"loadcurve":        cmdLoadCurve, // pre-runner spelling
		"corun":            cmdCoRun,
		"bench-suite":      cmdBenchSuite,
		"bench-kernel":     cmdBenchKernel,
		"simrun":           cmdSimRun,
		"export":           cmdExport,
		"config":           cmdConfig,
		"list":             cmdList,
		"serve":            cmdServe,
		"submit":           cmdSubmit,
		"backends":         cmdBackends,
		"loadgen":          cmdLoadgen,
		"version":          cmdVersion,
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `gpulat — reproduce "On Latency in GPU Throughput Microarchitectures"

commands:
  table1        static latencies of all four generations (Table I)
  sweep         full stride×footprint pointer-chase surface (CSV)
  fig1          per-bucket latency breakdown by pipeline stage (Figure 1)
  fig2          exposed vs hidden load latency per bucket (Figure 2)
  ablate-dram   DRAM scheduler ablation: FR-FCFS vs FCFS
  ablate-sched  warp scheduler ablation: LRR vs GTO
  ablate-mshr   L1 MSHR capacity ablation
  ablate-occupancy  latency hiding vs resident warps per SM
  load-curve    memory-system latency vs offered load (idle → saturated)
  corun         concurrent-kernel interference: workload pairs × placement policies
  bench-suite   the whole paper-reproduction grid, in parallel
  bench-kernel  simulator throughput: tick vs event engine, per workload
                (-par 1,2,4,8 adds the phase-parallel scaling dimension)
  simrun        run a workload and dump device statistics
  export        run a workload and dump per-load records as CSV
  config        dump a preset as editable JSON (use with -arch file:<path>)
  list          available architectures and workloads (-json for machines)
  serve         run the simulation service (HTTP API + result cache);
                -backends b1,b2 runs a sharding coordinator over them,
                -join <coord> registers this backend with a coordinator,
                -journal <path> makes grids survive coordinator restarts
  submit        submit jobs to a running service and collect results
                (-shard i/n for key-hash fan-out, -backendsz for pool view)
  backends      coordinator pool admin: list | join <addr> | leave <addr>
                (elastic membership: joins warm-hand cached results over)
  loadgen       replay a Zipf-distributed dedup-heavy job mix against a
                running service, scraping /metrics; writes BENCH_service.json
  version       report the build version and cache scheme tag

sweep-shaped commands take -j N (parallel experiment workers); sweep,
bench-suite, and corun also take -cache [-cache-dir D] to memoize job
results in the content-addressed cache the service uses. simrun, corun,
bench-suite, bench-kernel, and serve take -par N (goroutines per
simulation, phase-parallel stepping; results are identical at any
width).
`)
}

// newFlags builds a flag set that reports errors instead of exiting, so
// all failures funnel through main's single exit path.
func newFlags(name string) *flag.FlagSet {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	return fs
}

// errFlagReported stands in for flag-parse failures the FlagSet has
// already printed, so main exits 2 without repeating the message.
var errFlagReported = usageError{errors.New("invalid flags")}

// parseFlags parses args, normalizing failures into the uniform exit
// scheme (-h → 0, bad flags → 2).
func parseFlags(fs *flag.FlagSet, args []string) error {
	err := fs.Parse(args)
	if err == nil || errors.Is(err, flag.ErrHelp) {
		return err
	}
	return errFlagReported
}

// jobsFlag registers the shared -j worker-count flag.
func jobsFlag(fs *flag.FlagSet) *int {
	return fs.Int("j", 0, "parallel experiment workers (0 = GOMAXPROCS)")
}

// engineFlag registers the shared -engine simulation-loop flag; the two
// engines produce identical results (CI enforces a byte-level diff), so
// the fast-forwarding event kernel is the default. The empty default
// inherits the config's engine, letting a file:<path> configuration pin
// one.
func engineFlag(fs *flag.FlagSet) *string {
	return fs.String("engine", "", "simulation loop: event (fast-forwards provably idle cycles; default) or tick (cycle-by-cycle reference)")
}

// parFlag registers the shared -par intra-simulation parallelism flag.
// Where -j spreads jobs across workers, -par shards the phases of each
// simulated cycle across goroutines; results are byte-identical at any
// width (CI's par-determinism gate enforces the diff), so like -engine
// it never affects job identity or cached bytes.
func parFlag(fs *flag.FlagSet) *int {
	return fs.Int("par", 1, "goroutines per simulation for phase-parallel stepping (results identical at any width)")
}

// cacheOpts carries the shared -cache/-cache-dir/-cache-entries flags
// the sweep-shaped commands use to memoize results in the same
// content-addressed store `gpulat serve` serves from.
type cacheOpts struct {
	enabled *bool
	dir     *string
	entries *int
}

// cacheFlags registers the shared result-cache flags.
func cacheFlags(fs *flag.FlagSet) cacheOpts {
	return cacheOpts{
		enabled: fs.Bool("cache", false, "memoize job results in the content-addressed cache (warm re-runs skip simulation)"),
		dir:     fs.String("cache-dir", "", "cache directory (default ~/.cache/gpulat; implies -cache)"),
		entries: fs.Int("cache-entries", 0, "LRU bound on cached results (0 = default)"),
	}
}

// exec resolves the flags into a caching executor, or nil when caching
// is off (the runner then uses its plain executor).
func (c cacheOpts) exec() (runner.ExecFunc, error) {
	if !*c.enabled && *c.dir == "" {
		return nil, nil
	}
	cache, err := service.OpenCache(*c.dir, *c.entries)
	if err != nil {
		return nil, err
	}
	return service.CachedExec(cache, nil), nil
}

// runJobs executes a job list on a bounded pool with progress reporting
// on stderr and Ctrl-C cancellation, after validating the -engine
// selection and stamping it on every job (so no command can forget it).
// Job errors are aggregated into the returned error; the partial
// ResultSet is always returned.
func runJobs(jobs []runner.Job, workers int, progress bool, engine string) (*runner.ResultSet, error) {
	return runJobsExec(jobs, workers, progress, engine, 1, nil)
}

// runJobsExec is runJobs with an injected executor (nil = the default)
// and a per-simulation parallelism width (the -par flag); the -cache
// flag routes the service layer's caching executor through here.
func runJobsExec(jobs []runner.Job, workers int, progress bool, engine string, par int, exec runner.ExecFunc) (*runner.ResultSet, error) {
	if _, err := sim.ParseEngine(engine); err != nil {
		return nil, usagef("%v", err)
	}
	if par < 1 {
		return nil, usagef("-par must be >= 1 (got %d)", par)
	}
	for i := range jobs {
		jobs[i].Engine = engine
		jobs[i].Workers = par
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	// After the first interrupt, unregister the handler: in-flight
	// simulations are not preemptible, so a second Ctrl-C must take the
	// default action (kill) instead of being swallowed here.
	go func() {
		<-ctx.Done()
		stop()
	}()
	r := runner.New(workers)
	r.Exec = exec
	if progress {
		r.Progress = func(ev runner.ProgressEvent) {
			status := ""
			if ev.Result.Failed() {
				status = "  FAILED"
			}
			fmt.Fprintf(os.Stderr, "[%d/%d] %s (%s)%s\n",
				ev.Done, ev.Total, ev.Result.Job.Name(),
				ev.Result.Elapsed.Round(1_000_000), status)
		}
	}
	set, err := r.Run(ctx, jobs)
	if err != nil {
		return set, err
	}
	return set, set.Err()
}

// mustConfig resolves an architecture preset name or a "file:<path>"
// JSON configuration.
func mustConfig(name string) (gpu.Config, error) {
	return config.ByNameOrFile(name)
}

// applyEngineConfig overrides cfg's engine with the -engine selection;
// the empty flag default keeps the config's own (commands that run a
// device directly instead of through the runner use this).
func applyEngineConfig(cfg gpu.Config, engine string) (gpu.Config, error) {
	if engine == "" {
		return cfg, nil
	}
	eng, err := sim.ParseEngine(engine)
	if err != nil {
		return cfg, usagef("%v", err)
	}
	cfg.Engine = eng
	return cfg, nil
}

func parseU32List(s string) ([]uint32, error) {
	var out []uint32
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseUint(strings.TrimSpace(part), 10, 32)
		if err != nil {
			return nil, usagef("bad list element %q: %v", part, err)
		}
		out = append(out, uint32(v))
	}
	return out, nil
}
