package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"gpulat/internal/config"
	"gpulat/internal/core"
	"gpulat/internal/kernels"
	"gpulat/internal/metrics"
	"gpulat/internal/runner"
	"gpulat/internal/sched"
	"gpulat/internal/service"
	"gpulat/internal/stats"
)

// Every experiment command below is a thin shell around internal/runner:
// build a Grid, expand it, execute on the worker pool, render from the
// ordered results. Rendering never depends on completion order, so -j 1
// and -j 8 print identical output.

func cmdTable1(args []string) error {
	fs := newFlags("table1")
	accesses := fs.Int("accesses", 256, "timed loads per measurement point")
	archs := fs.String("archs", "GT200,GF106,GK104,GM107", "comma-separated presets")
	jobs := jobsFlag(fs)
	engine := engineFlag(fs)
	if err := parseFlags(fs, args); err != nil {
		return err
	}

	var names []string
	for _, a := range strings.Split(*archs, ",") {
		names = append(names, strings.TrimSpace(a))
	}
	grid := runner.Grid{
		Kind:     runner.KindStatic,
		Archs:    names,
		Variants: []runner.Options{{Accesses: *accesses}},
	}
	set, err := runJobs(grid.Jobs(), *jobs, true, *engine)
	if err != nil {
		return err
	}
	var rows []core.StaticResult
	for _, r := range set.Results {
		rows = append(rows, r.Payload.(core.StaticResult))
	}
	fmt.Println("Table I — latencies of memory loads through the global memory pipeline")
	fmt.Println("(simulated reproduction; paper values: GT200 DRAM 440, GF106 45/310/685,")
	fmt.Println(" GK104 30/175/300, GM107 194/350)")
	fmt.Println()
	core.TableI(os.Stdout, rows)
	return nil
}

func cmdSweep(args []string) error {
	fs := newFlags("sweep")
	arch := fs.String("arch", "GF106", "architecture preset")
	strides := fs.String("strides", "128,256,512,1024", "strides in bytes")
	foot := fs.String("footprints", "8192,16384,32768,65536,131072,262144,524288,1048576,4194304", "footprints in bytes")
	accesses := fs.Int("accesses", 128, "timed loads per point")
	detect := fs.Bool("detect", false, "detect hierarchy-level plateaus instead of raw CSV")
	jobs := jobsFlag(fs)
	engine := engineFlag(fs)
	cacheFl := cacheFlags(fs)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	exec, err := cacheFl.exec()
	if err != nil {
		return err
	}

	st, err := parseU32List(*strides)
	if err != nil {
		return err
	}
	fp, err := parseU32List(*foot)
	if err != nil {
		return err
	}
	// One chase job per surface cell, stride-major like the serial sweep.
	var variants []runner.Options
	for _, stride := range st {
		for _, footprint := range fp {
			if footprint < stride {
				continue
			}
			variants = append(variants, runner.Options{
				Label:  fmt.Sprintf("s%d/f%d", stride, footprint),
				Stride: stride, Footprint: footprint, Accesses: *accesses,
			})
		}
	}
	if len(variants) == 0 {
		// Every footprint was smaller than its stride: an empty surface,
		// not an error (core.Sweep skips such cells the same way).
		if !*detect {
			fmt.Println("arch,stride,footprint,mean_latency")
		}
		return nil
	}
	grid := runner.Grid{Kind: runner.KindChase, Archs: []string{*arch}, Variants: variants}
	set, err := runJobsExec(grid.Jobs(), *jobs, true, *engine, 1, exec)
	if err != nil {
		return err
	}
	// Rebuild the surface from metrics rather than the typed payload, so
	// cache-served results (metrics only) render identically.
	var points []core.SweepPoint
	for _, r := range set.Results {
		stride, _ := r.Metric("stride")
		footprint, _ := r.Metric("footprint")
		mean, _ := r.Metric("mean_lat")
		points = append(points, core.SweepPoint{
			Stride: uint32(stride), Footprint: uint32(footprint), MeanLat: mean,
		})
	}
	archName := set.Results[0].Job.Arch
	if cfg, cerr := mustConfig(*arch); cerr == nil {
		archName = cfg.Name
	}
	if *detect {
		for _, stride := range st {
			levels := core.DetectLevels(points, stride, 0.08)
			core.RenderLevels(os.Stdout, archName, stride, levels)
		}
		return nil
	}
	fmt.Println("arch,stride,footprint,mean_latency")
	for _, p := range points {
		fmt.Printf("%s,%d,%d,%.1f\n", archName, p.Stride, p.Footprint, p.MeanLat)
	}
	return nil
}

func cmdFig(args []string, exposure bool) error {
	name := "fig1"
	if exposure {
		name = "fig2"
	}
	fs := newFlags(name)
	arch := fs.String("arch", "GF100", "architecture preset")
	kernel := fs.String("kernel", "bfs", "workload (bfs or a catalog kernel)")
	buckets := fs.Int("buckets", 48, "latency buckets")
	vertices := fs.Int("vertices", 1<<13, "BFS graph size")
	seed := fs.Uint64("seed", 42, "input seed")
	csv := fs.Bool("csv", false, "emit CSV instead of a table")
	chart := fs.Bool("chart", false, "draw an ASCII stacked-bar chart like the paper's figure")
	engine := engineFlag(fs)
	if err := parseFlags(fs, args); err != nil {
		return err
	}

	grid := runner.Grid{
		Kind:     runner.KindDynamic,
		Archs:    []string{*arch},
		Kernels:  []string{*kernel},
		Variants: []runner.Options{{Vertices: *vertices, Buckets: *buckets}},
	}
	jobs := grid.Jobs()
	// Honor the flag verbatim, including -seed 0 (Options.Seed cannot
	// express a literal zero — it means "unpinned" there).
	jobs[0].Seed = *seed
	fmt.Fprintf(os.Stderr, "running %s on %s...\n", *kernel, *arch)
	set, err := runJobs(jobs, 1, false, *engine)
	if err != nil {
		return err
	}
	res := set.Results[0].Payload.(*core.DynamicResult)
	if exposure {
		rep := res.Exposure(*buckets)
		switch {
		case *chart:
			rep.RenderChart(os.Stdout, 25)
		case *csv:
			rep.RenderCSV(os.Stdout)
		default:
			rep.Render(os.Stdout)
		}
		return nil
	}
	rep := res.Breakdown(*buckets)
	switch {
	case *chart:
		rep.RenderChart(os.Stdout, 25)
	case *csv:
		rep.RenderCSV(os.Stdout)
	default:
		rep.Render(os.Stdout)
	}
	return nil
}

// dramSchedVariants builds one option set per DRAM scheduling policy.
func dramSchedVariants(base runner.Options) []runner.Options {
	var out []runner.Options
	for _, sched := range []string{"FR-FCFS", "FR-FCFS-cap", "FCFS"} {
		o := base
		o.Label = sched
		o.Overrides.DRAMSched = sched
		out = append(out, o)
	}
	return out
}

func cmdAblateDRAM(args []string) error {
	fs := newFlags("ablate-dram")
	arch := fs.String("arch", "GF100", "architecture preset")
	kernel := fs.String("kernel", "bfs", "workload")
	vertices := fs.Int("vertices", 1<<13, "BFS graph size")
	jobs := jobsFlag(fs)
	engine := engineFlag(fs)
	if err := parseFlags(fs, args); err != nil {
		return err
	}

	// Two views: (a) synthetic traffic near the saturation knee via the
	// memory-subsystem testbench — the controlled latency measurement;
	// (b) the end-to-end workload, where the scheduler matters only when
	// DRAM is the bottleneck. Both grids run on one pool.
	synth := runner.Grid{
		Kind:  runner.KindLoaded,
		Archs: []string{*arch},
		Variants: dramSchedVariants(runner.Options{
			OfferedLoad: 0.04, Cycles: 30_000,
		}),
		BaseSeed: 1, FixedSeed: true,
	}
	dyn := runner.Grid{
		Kind:    runner.KindDynamic,
		Archs:   []string{*arch},
		Kernels: []string{*kernel},
		Variants: dramSchedVariants(runner.Options{
			Vertices: *vertices,
		}),
		FixedSeed: true,
	}
	all := append(synth.Jobs(), dyn.Jobs()...)
	set, err := runJobs(all, *jobs, true, *engine)
	if err != nil {
		return err
	}
	nSynth := len(synth.Jobs())

	tbSynth := stats.NewTable("scheduler", "mean lat", "p99 lat", "achieved/port")
	for _, r := range set.Results[:nSynth] {
		p := r.Payload.(core.LoadedPoint)
		tbSynth.AddRow(r.Job.Options.Label, p.MeanLatency, p.P99Latency,
			fmt.Sprintf("%.3f", p.AchievedLoad))
	}
	fmt.Printf("DRAM scheduler ablation — synthetic random traffic near saturation on %s\n", *arch)
	tbSynth.Render(os.Stdout)
	fmt.Println()

	tb := stats.NewTable("scheduler", "cycles", "IPC", "mean load lat", "p99 load lat")
	for _, r := range set.Results[nSynth:] {
		res := r.Payload.(*core.DynamicResult)
		sum := res.LoadSummary()
		tb.AddRow(r.Job.Options.Label, uint64(res.Cycles), fmt.Sprintf("%.3f", res.IPC()),
			sum.Mean, sum.P99)
	}
	fmt.Printf("DRAM scheduler ablation — %s on %s\n", *kernel, *arch)
	tb.Render(os.Stdout)
	return nil
}

func cmdAblateSched(args []string) error {
	fs := newFlags("ablate-sched")
	arch := fs.String("arch", "GF100", "architecture preset")
	kernel := fs.String("kernel", "bfs", "workload")
	vertices := fs.Int("vertices", 1<<13, "BFS graph size")
	jobs := jobsFlag(fs)
	engine := engineFlag(fs)
	if err := parseFlags(fs, args); err != nil {
		return err
	}

	var variants []runner.Options
	for _, sched := range []string{"LRR", "GTO"} {
		variants = append(variants, runner.Options{
			Label: sched, Vertices: *vertices,
			Overrides: config.Overrides{WarpSched: sched},
		})
	}
	grid := runner.Grid{
		Kind: runner.KindDynamic, Archs: []string{*arch}, Kernels: []string{*kernel},
		Variants: variants, FixedSeed: true,
	}
	set, err := runJobs(grid.Jobs(), *jobs, true, *engine)
	if err != nil {
		return err
	}
	tb := stats.NewTable("scheduler", "cycles", "IPC", "exposed%", "loads>50% exposed")
	for _, r := range set.Results {
		res := r.Payload.(*core.DynamicResult)
		er := res.Exposure(24)
		tb.AddRow(r.Job.Options.Label, uint64(res.Cycles), fmt.Sprintf("%.3f", res.IPC()),
			er.OverallExposedPct(), er.MostlyExposedPct())
	}
	fmt.Printf("Warp scheduler ablation — %s on %s\n", *kernel, *arch)
	tb.Render(os.Stdout)
	return nil
}

func cmdAblateMSHR(args []string) error {
	fs := newFlags("ablate-mshr")
	arch := fs.String("arch", "GF100", "architecture preset")
	kernel := fs.String("kernel", "bfs", "workload")
	vertices := fs.Int("vertices", 1<<13, "BFS graph size")
	jobs := jobsFlag(fs)
	engine := engineFlag(fs)
	if err := parseFlags(fs, args); err != nil {
		return err
	}

	var variants []runner.Options
	for _, mshrs := range []int{4, 8, 16, 32, 64} {
		variants = append(variants, runner.Options{
			Label: fmt.Sprintf("mshr=%d", mshrs), Vertices: *vertices,
			Overrides: config.Overrides{L1MSHRs: mshrs},
		})
	}
	grid := runner.Grid{
		Kind: runner.KindDynamic, Archs: []string{*arch}, Kernels: []string{*kernel},
		Variants: variants, FixedSeed: true,
	}
	set, err := runJobs(grid.Jobs(), *jobs, true, *engine)
	if err != nil {
		return err
	}
	tb := stats.NewTable("L1 MSHRs", "cycles", "IPC", "mean load lat", "p99 load lat")
	for _, r := range set.Results {
		res := r.Payload.(*core.DynamicResult)
		sum := res.LoadSummary()
		tb.AddRow(r.Job.Options.Overrides.L1MSHRs, uint64(res.Cycles),
			fmt.Sprintf("%.3f", res.IPC()), sum.Mean, sum.P99)
	}
	fmt.Printf("L1 MSHR ablation — %s on %s\n", *kernel, *arch)
	tb.Render(os.Stdout)
	return nil
}

func cmdAblateOccupancy(args []string) error {
	fs := newFlags("ablate-occupancy")
	arch := fs.String("arch", "GF100", "architecture preset")
	vertices := fs.Int("vertices", 1<<13, "BFS graph size")
	jobs := jobsFlag(fs)
	engine := engineFlag(fs)
	if err := parseFlags(fs, args); err != nil {
		return err
	}

	var variants []runner.Options
	for _, w := range []int{4, 8, 16, 32, 48} {
		variants = append(variants, runner.Options{
			Label: fmt.Sprintf("warps=%d", w), WarpLimit: w, Vertices: *vertices,
		})
	}
	grid := runner.Grid{
		Kind: runner.KindOccupancy, Archs: []string{*arch},
		Variants: variants, FixedSeed: true,
	}
	set, err := runJobs(grid.Jobs(), *jobs, true, *engine)
	if err != nil {
		return err
	}
	var points []core.OccupancyPoint
	for _, r := range set.Results {
		points = append(points, r.Payload.(core.OccupancyPoint))
	}
	cfg, err := mustConfig(*arch)
	if err != nil {
		return err
	}
	core.RenderOccupancy(os.Stdout, "bfs", cfg.Name, points)
	return nil
}

func cmdLoadCurve(args []string) error {
	fs := newFlags("load-curve")
	arch := fs.String("arch", "GF100", "architecture preset")
	cycles := fs.Int("cycles", 50_000, "measurement cycles per point")
	jobs := jobsFlag(fs)
	engine := engineFlag(fs)
	if err := parseFlags(fs, args); err != nil {
		return err
	}

	var variants []runner.Options
	for _, load := range []float64{0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.4} {
		variants = append(variants, runner.Options{
			Label: fmt.Sprintf("load=%g", load), OfferedLoad: load, Cycles: *cycles,
		})
	}
	grid := runner.Grid{
		Kind: runner.KindLoaded, Archs: []string{*arch},
		Variants: variants, BaseSeed: 1, FixedSeed: true,
	}
	set, err := runJobs(grid.Jobs(), *jobs, true, *engine)
	if err != nil {
		return err
	}
	var points []core.LoadedPoint
	for _, r := range set.Results {
		points = append(points, r.Payload.(core.LoadedPoint))
	}
	cfg, err := mustConfig(*arch)
	if err != nil {
		return err
	}
	core.RenderLoadedCurve(os.Stdout, cfg.Name, points)
	return nil
}

func cmdSimRun(args []string) error {
	fs := newFlags("simrun")
	arch := fs.String("arch", "GF100", "architecture preset (or file:<path>)")
	kernel := fs.String("kernel", "vecadd", "workload")
	vertices := fs.Int("vertices", 1<<13, "BFS graph size")
	verbose := fs.Bool("v", false, "dump per-SM and per-partition counters")
	traceSim := fs.String("trace-sim", "",
		"write a Prometheus text exposition of engine wake/skip and per-kernel dispatch/retire counters to this file after the run (\"-\" for stdout)")
	engine := engineFlag(fs)
	par := parFlag(fs)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *par < 1 {
		return usagef("-par must be >= 1 (got %d)", *par)
	}

	cfg, err := mustConfig(*arch)
	if err != nil {
		return err
	}
	if cfg, err = applyEngineConfig(cfg, *engine); err != nil {
		return err
	}
	cfg.Workers = *par
	job := runner.Job{
		Kind: runner.KindDynamic, Arch: *arch, Kernel: *kernel, Seed: 42,
		Options: runner.Options{Vertices: *vertices},
	}
	res, err := runner.RunWorkload(cfg, job)
	if err != nil {
		return err
	}
	sum := res.LoadSummary()
	fmt.Printf("workload:        %s\n", res.Workload)
	fmt.Printf("architecture:    %s\n", res.Arch)
	fmt.Printf("cycles:          %d\n", res.Cycles)
	fmt.Printf("kernel launches: %d\n", res.Launches)
	fmt.Printf("instructions:    %d\n", res.Instructions)
	fmt.Printf("IPC:             %.3f\n", res.IPC())
	fmt.Printf("tracked loads:   %d\n", sum.Count)
	fmt.Printf("load latency:    mean %.1f  p50 %.0f  p90 %.0f  p99 %.0f  max %.0f\n",
		sum.Mean, sum.P50, sum.P90, sum.P99, sum.Max)
	er := res.Exposure(24)
	fmt.Printf("exposed latency: %.1f%% overall; %.1f%% of loads >50%% exposed\n",
		er.OverallExposedPct(), er.MostlyExposedPct())
	if *verbose {
		fmt.Println()
		dumpDeviceStats(cfg, res, *vertices)
	}
	if *traceSim != "" {
		if err := writeSimTrace(*traceSim, res); err != nil {
			return err
		}
	}
	return nil
}

// writeSimTrace exports the finished run's device counters as a
// Prometheus text exposition — the -trace-sim sink. The device is read
// after the simulation completes, so the export can never perturb the
// run it describes.
func writeSimTrace(path string, res *core.DynamicResult) error {
	if res.Device == nil {
		return fmt.Errorf("simrun: no device retained for -trace-sim")
	}
	reg := metrics.NewRegistry()
	res.Device.ExportMetrics(reg)
	if path == "-" {
		fmt.Println()
		_, err := reg.WriteTo(os.Stdout)
		return err
	}
	var b strings.Builder
	if _, err := reg.WriteTo(&b); err != nil {
		return err
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

func cmdExport(args []string) error {
	fs := newFlags("export")
	arch := fs.String("arch", "GF100", "architecture preset")
	kernel := fs.String("kernel", "bfs", "workload")
	vertices := fs.Int("vertices", 1<<13, "BFS graph size")
	engine := engineFlag(fs)
	if err := parseFlags(fs, args); err != nil {
		return err
	}

	cfg, err := mustConfig(*arch)
	if err != nil {
		return err
	}
	if cfg, err = applyEngineConfig(cfg, *engine); err != nil {
		return err
	}
	job := runner.Job{
		Kind: runner.KindDynamic, Arch: *arch, Kernel: *kernel, Seed: 42,
		Options: runner.Options{Vertices: *vertices},
	}
	res, err := runner.RunWorkload(cfg, job)
	if err != nil {
		return err
	}
	return core.WriteRecordsCSV(os.Stdout, res.Tracker.Records())
}

func cmdConfig(args []string) error {
	fs := newFlags("config")
	arch := fs.String("arch", "GF100", "architecture preset (or file:<path>)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	cfg, err := mustConfig(*arch)
	if err != nil {
		return err
	}
	data, err := config.ToJSON(cfg)
	if err != nil {
		return err
	}
	fmt.Println(string(data))
	return nil
}

func cmdList(args []string) error {
	fs := newFlags("list")
	jsonOut := fs.Bool("json", false, "emit the machine-readable spec catalog (kernels, archs, engines, schedulers, placements)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *jsonOut {
		// The same catalog the service exposes at /v1/catalog: clients
		// discover valid job specs from either surface.
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(service.Catalog())
	}
	fmt.Println("architectures:")
	for _, a := range config.Names() {
		cfg, ok := config.ByName(a)
		if !ok {
			continue
		}
		fmt.Printf("  %-7s %2d SMs, %d partitions\n", a, cfg.NumSMs, cfg.NumPartitions)
	}
	fmt.Println("workloads: bfs (dynamic analysis),", strings.Join(kernels.CatalogNames(), ", "))
	fmt.Println("engines: event (default; fast-forwards idle cycles), tick (cycle-by-cycle reference)")
	fmt.Println("warp schedulers: LRR (default), GTO")
	fmt.Println("DRAM schedulers: FR-FCFS (default), FR-FCFS-cap, FCFS")
	fmt.Println("block placement: " + strings.Join(sched.PlacementNames(), ", ") +
		" (corun streams; shared is the default)")
	return nil
}
