package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"gpulat/internal/service"
	"gpulat/internal/sim"
)

// cmdServe runs the simulation service: an HTTP JSON API over the
// deduplicating station and the persistent content-addressed result
// cache. Identical jobs submitted by any number of clients run at most
// once per cache lifetime; warm grid re-runs answer in milliseconds.
//
// With -backends, the same process serves the same API as a sharding
// coordinator instead: it runs no simulations itself, routing each job
// to one of the listed backend `gpulat serve` processes by consistent
// hashing on its content key (so backend caches stay hot), and failing
// over to the survivors when a backend dies. Clients cannot tell the
// difference — `gpulat submit` works unchanged against either mode.
func cmdServe(args []string) error {
	fs := newFlags("serve")
	addr := fs.String("addr", "127.0.0.1:8091", "listen address")
	backends := fs.String("backends", "", "comma-separated backend addresses (host:port); run as a sharding coordinator over them instead of simulating locally")
	cacheDir := fs.String("cache-dir", "", "result cache directory (default ~/.cache/gpulat)")
	cacheEntries := fs.Int("cache-entries", 0, "LRU bound on cached results (0 = default)")
	noCache := fs.Bool("no-cache", false, "serve without a persistent cache (in-flight dedup only)")
	queueBound := fs.Int("queue", 4096, "admission bound (station: jobs admitted but not running; coordinator: live keys); overflow → HTTP 503")
	probe := fs.Duration("probe", 250*time.Millisecond, "coordinator health-probe interval (with -backends)")
	jobs := jobsFlag(fs)
	engine := engineFlag(fs)
	par := parFlag(fs)
	quiet := fs.Bool("quiet", false, "suppress the startup banner on stderr")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if _, err := sim.ParseEngine(*engine); err != nil {
		return usagef("%v", err)
	}
	if *par < 1 {
		return usagef("-par must be >= 1 (got %d)", *par)
	}

	var svc service.JobService
	var cache *service.Cache
	var banner string
	if *backends != "" {
		// Coordinator mode: no local cache, no local workers — the
		// backends own both. Refuse station-only flags instead of
		// silently ignoring them (-queue stays meaningful: it bounds the
		// coordinator's live-key admission).
		var incompatible []string
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "cache-dir", "cache-entries", "no-cache", "j", "engine", "par":
				incompatible = append(incompatible, "-"+f.Name)
			}
		})
		if len(incompatible) > 0 {
			return usagef("serve: %s cannot be combined with -backends (caches, workers, and engines belong to the backends)",
				strings.Join(incompatible, ", "))
		}
		var addrs []string
		for _, a := range strings.Split(*backends, ",") {
			if a = strings.TrimSpace(a); a != "" {
				addrs = append(addrs, a)
			}
		}
		coord, err := service.NewCoordinator(service.CoordinatorConfig{
			Backends:      addrs,
			ProbeInterval: *probe,
			QueueBound:    *queueBound,
		})
		if err != nil {
			return usagef("serve: %v", err)
		}
		defer coord.Close()
		svc = coord
		banner = fmt.Sprintf("coordinator over %d backends: %s", len(addrs), strings.Join(addrs, ", "))
	} else {
		if !*noCache {
			var err error
			if cache, err = service.OpenCache(*cacheDir, *cacheEntries); err != nil {
				return err
			}
		}
		station := service.NewStation(cache, service.StationConfig{
			Workers:    *jobs,
			QueueBound: *queueBound,
			Engine:     *engine,
			Par:        *par,
		})
		defer station.Close()
		svc = station
		where := "disabled"
		if cache != nil {
			where = cache.Dir()
		}
		workers := *jobs
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		banner = fmt.Sprintf("%d workers, cache %s", workers, where)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	srv := &http.Server{Handler: service.NewServer(svc, cache)}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "gpulat serve: listening on http://%s (%s, %s)\n",
			ln.Addr(), service.Version(), banner)
	}

	// SIGTERM is how process managers (and the service-determinism make
	// gate) stop the server; both it and Ctrl-C get a graceful drain.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	select {
	case err := <-errCh:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx)
		return nil
	}
}

// cmdVersion reports the build's identity and the cache scheme tag it
// reads and writes — the tag is how mixed-version fleets avoid serving
// each other results produced under different simulator semantics.
func cmdVersion(args []string) error {
	fs := newFlags("version")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	fmt.Printf("gpulat %s\n", service.Version())
	fmt.Printf("cache scheme: %s\n", service.SchemeTag())
	fmt.Printf("go: %s\n", runtime.Version())
	return nil
}
