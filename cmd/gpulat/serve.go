package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand/v2"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"gpulat/internal/service"
	"gpulat/internal/sim"
)

// cmdServe runs the simulation service: an HTTP JSON API over the
// deduplicating station and the persistent content-addressed result
// cache. Identical jobs submitted by any number of clients run at most
// once per cache lifetime; warm grid re-runs answer in milliseconds.
//
// With -backends (or -coordinator), the same process serves the same
// API as a sharding coordinator instead: it runs no simulations itself,
// routing each job to one of the backend `gpulat serve` processes by
// consistent hashing on its content key (so backend caches stay hot),
// and failing over to the survivors when a backend dies. Membership is
// elastic — backends join and leave at runtime (POST /v1/backends/join,
// `gpulat backends`, or a backend's own -join flag), with cached
// results warm-handed to new owners — and -journal makes in-flight
// grids survive a coordinator restart. Clients cannot tell the
// difference — `gpulat submit` works unchanged against either mode.
func cmdServe(args []string) error {
	fs := newFlags("serve")
	addr := fs.String("addr", "127.0.0.1:8091", "listen address")
	backends := fs.String("backends", "", "comma-separated backend addresses (host:port); run as a sharding coordinator over them instead of simulating locally")
	coordinator := fs.Bool("coordinator", false, "run as a sharding coordinator even with no -backends list (the pool fills via runtime joins)")
	journal := fs.String("journal", "", "coordinator write-ahead journal (JSONL); accepted jobs and membership changes replay on restart")
	joinURL := fs.String("join", "", "coordinator base URL to register this backend with; re-asserts periodically and deregisters on graceful shutdown")
	advertise := fs.String("advertise", "", "address to register via -join (default: the listen address; required when listening on a wildcard address)")
	cacheDir := fs.String("cache-dir", "", "result cache directory (default ~/.cache/gpulat)")
	cacheEntries := fs.Int("cache-entries", 0, "LRU bound on cached results (0 = default)")
	noCache := fs.Bool("no-cache", false, "serve without a persistent cache (in-flight dedup only)")
	queueBound := fs.Int("queue", 4096, "admission bound (station: jobs admitted but not running; coordinator: live keys); overflow → HTTP 503")
	probe := fs.Duration("probe", 250*time.Millisecond, "coordinator health-probe interval (with -backends)")
	jobs := jobsFlag(fs)
	engine := engineFlag(fs)
	par := parFlag(fs)
	quiet := fs.Bool("quiet", false, "suppress the startup banner on stderr")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if _, err := sim.ParseEngine(*engine); err != nil {
		return usagef("%v", err)
	}
	if *par < 1 {
		return usagef("-par must be >= 1 (got %d)", *par)
	}
	coordMode := *backends != "" || *coordinator
	if coordMode && *joinURL != "" {
		return usagef("serve: -join is a backend-mode flag; a coordinator does not join itself")
	}
	if !coordMode && *journal != "" {
		return usagef("serve: -journal requires coordinator mode (-backends or -coordinator)")
	}
	if *advertise != "" && *joinURL == "" {
		return usagef("serve: -advertise requires -join")
	}

	var svc service.JobService
	var cache *service.Cache
	var banner string
	if coordMode {
		// Coordinator mode: no local cache, no local workers — the
		// backends own both. Refuse station-only flags instead of
		// silently ignoring them (-queue stays meaningful: it bounds the
		// coordinator's live-key admission).
		var incompatible []string
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "cache-dir", "cache-entries", "no-cache", "j", "engine", "par":
				incompatible = append(incompatible, "-"+f.Name)
			}
		})
		if len(incompatible) > 0 {
			return usagef("serve: %s cannot be combined with coordinator mode (caches, workers, and engines belong to the backends)",
				strings.Join(incompatible, ", "))
		}
		var addrs []string
		for _, a := range strings.Split(*backends, ",") {
			if a = strings.TrimSpace(a); a != "" {
				addrs = append(addrs, a)
			}
		}
		coord, err := service.NewCoordinator(service.CoordinatorConfig{
			Backends:      addrs,
			ProbeInterval: *probe,
			QueueBound:    *queueBound,
			JournalPath:   *journal,
		})
		if err != nil {
			return fmt.Errorf("serve: %w", err)
		}
		defer coord.Close()
		svc = coord
		banner = fmt.Sprintf("coordinator over %d backends", len(addrs))
		if len(addrs) > 0 {
			banner += ": " + strings.Join(addrs, ", ")
		}
		if *journal != "" {
			banner += fmt.Sprintf(", journal %s", *journal)
		}
	} else {
		if !*noCache {
			var err error
			if cache, err = service.OpenCache(*cacheDir, *cacheEntries); err != nil {
				return err
			}
		}
		station := service.NewStation(cache, service.StationConfig{
			Workers:    *jobs,
			QueueBound: *queueBound,
			Engine:     *engine,
			Par:        *par,
		})
		defer station.Close()
		svc = station
		where := "disabled"
		if cache != nil {
			where = cache.Dir()
		}
		workers := *jobs
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		banner = fmt.Sprintf("%d workers, cache %s", workers, where)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	srv := &http.Server{Handler: service.NewServer(svc, cache)}

	// Backend registration: with -join, announce this backend to the
	// coordinator once the listener is up, then keep re-asserting —
	// joins are idempotent, and the re-assert heals a coordinator that
	// restarted without its journal (or that starts after us).
	var coordClient *service.Client
	adv := ""
	if *joinURL != "" {
		if adv, err = advertiseAddr(*advertise, ln.Addr()); err != nil {
			return err
		}
		coordClient = service.NewClient(*joinURL)
		banner += fmt.Sprintf(", joining %s as %s", *joinURL, adv)
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "gpulat serve: listening on http://%s (%s, %s)\n",
			ln.Addr(), service.Version(), banner)
	}
	regCtx, regStop := context.WithCancel(context.Background())
	defer regStop()
	if coordClient != nil {
		go func() {
			for {
				jctx, cancel := context.WithTimeout(regCtx, 5*time.Second)
				_, err := coordClient.JoinBackend(jctx, adv)
				cancel()
				if err != nil && !*quiet && regCtx.Err() == nil {
					fmt.Fprintf(os.Stderr, "gpulat serve: join %s: %v (will retry)\n", *joinURL, err)
				}
				select {
				case <-regCtx.Done():
					return
				// Jittered so a fleet of backends doesn't re-register in
				// lockstep.
				case <-time.After(8*time.Second + rand.N(4*time.Second)):
				}
			}
		}()
	}

	// SIGTERM is how process managers (and the service-determinism make
	// gate) stop the server; both it and Ctrl-C get a graceful drain.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	select {
	case err := <-errCh:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-ctx.Done():
		regStop()
		if coordClient != nil {
			// Best-effort deregistration: the coordinator drains our keys
			// to the survivors instead of waiting out the failure detector.
			lctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
			_, _ = coordClient.LeaveBackend(lctx, adv)
			cancel()
		}
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx)
		return nil
	}
}

// advertiseAddr resolves the address a -join backend registers under:
// the explicit -advertise value, or the concrete listen address. A
// wildcard listen host (0.0.0.0, [::]) is not reachable from the
// coordinator, so it must be overridden explicitly.
func advertiseAddr(explicit string, listen net.Addr) (string, error) {
	if explicit != "" {
		return explicit, nil
	}
	host, _, err := net.SplitHostPort(listen.String())
	if err != nil {
		return "", fmt.Errorf("serve: cannot derive -advertise from listen address %q: %w", listen, err)
	}
	if ip := net.ParseIP(host); ip != nil && ip.IsUnspecified() {
		return "", usagef("serve: listening on wildcard %s; -join needs an explicit -advertise host:port", listen)
	}
	return listen.String(), nil
}

// cmdVersion reports the build's identity and the cache scheme tag it
// reads and writes — the tag is how mixed-version fleets avoid serving
// each other results produced under different simulator semantics.
func cmdVersion(args []string) error {
	fs := newFlags("version")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	fmt.Printf("gpulat %s\n", service.Version())
	fmt.Printf("cache scheme: %s\n", service.SchemeTag())
	fmt.Printf("go: %s\n", runtime.Version())
	return nil
}
