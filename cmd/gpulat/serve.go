package main

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"gpulat/internal/service"
	"gpulat/internal/sim"
)

// cmdServe runs the simulation service: an HTTP JSON API over the
// deduplicating station and the persistent content-addressed result
// cache. Identical jobs submitted by any number of clients run at most
// once per cache lifetime; warm grid re-runs answer in milliseconds.
func cmdServe(args []string) error {
	fs := newFlags("serve")
	addr := fs.String("addr", "127.0.0.1:8091", "listen address")
	cacheDir := fs.String("cache-dir", "", "result cache directory (default ~/.cache/gpulat)")
	cacheEntries := fs.Int("cache-entries", 0, "LRU bound on cached results (0 = default)")
	noCache := fs.Bool("no-cache", false, "serve without a persistent cache (in-flight dedup only)")
	queueBound := fs.Int("queue", 4096, "admitted-but-not-running job bound (overflow → HTTP 503)")
	jobs := jobsFlag(fs)
	engine := engineFlag(fs)
	quiet := fs.Bool("quiet", false, "suppress the startup banner on stderr")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if _, err := sim.ParseEngine(*engine); err != nil {
		return usagef("%v", err)
	}

	var cache *service.Cache
	if !*noCache {
		var err error
		if cache, err = service.OpenCache(*cacheDir, *cacheEntries); err != nil {
			return err
		}
	}
	station := service.NewStation(cache, service.StationConfig{
		Workers:    *jobs,
		QueueBound: *queueBound,
		Engine:     *engine,
	})
	defer station.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	srv := &http.Server{Handler: service.NewServer(station, cache)}
	if !*quiet {
		where := "disabled"
		if cache != nil {
			where = cache.Dir()
		}
		workers := *jobs
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		fmt.Fprintf(os.Stderr, "gpulat serve: listening on http://%s (%s, %d workers, cache %s)\n",
			ln.Addr(), service.Version(), workers, where)
	}

	// SIGTERM is how process managers (and the service-determinism make
	// gate) stop the server; both it and Ctrl-C get a graceful drain.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	select {
	case err := <-errCh:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx)
		return nil
	}
}

// cmdVersion reports the build's identity and the cache scheme tag it
// reads and writes — the tag is how mixed-version fleets avoid serving
// each other results produced under different simulator semantics.
func cmdVersion(args []string) error {
	fs := newFlags("version")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	fmt.Printf("gpulat %s\n", service.Version())
	fmt.Printf("cache scheme: %s\n", service.SchemeTag())
	fmt.Printf("go: %s\n", runtime.Version())
	return nil
}
