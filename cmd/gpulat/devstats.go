package main

import (
	"fmt"
	"os"
	"strings"

	"gpulat/internal/core"
	"gpulat/internal/gpu"
	"gpulat/internal/kernels"
	"gpulat/internal/stats"
)

// dumpDeviceStats reruns the workload against a fresh device to collect
// per-component counters (the DynamicResult does not retain the device).
// vertices must match the headline run's BFS graph size.
func dumpDeviceStats(cfg gpu.Config, res *core.DynamicResult, vertices int) {
	// Rerun is cheap relative to interpretation value; determinism makes
	// it exact.
	g := gpu.NewWithObservers(cfg, nil, nil)
	var err error
	if res.Launches > 1 {
		gr := kernels.GenScaleFree(vertices, 4, 42)
		mk, e := kernels.BFS(kernels.BFSConfig{Graph: gr, Source: 0, BlockDim: 128})
		if e != nil {
			return
		}
		_, _, err = kernels.RunMulti(g, mk)
	} else {
		var wl *kernels.Workload
		name := res.Workload
		if i := strings.IndexByte(name, '/'); i > 0 {
			name = name[:i]
		}
		wl, err = kernels.NewByName(name, kernels.ScaleExperiment, 42)
		if err == nil {
			_, err = kernels.Run(g, wl)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "stats rerun:", err)
		return
	}
	smTab := stats.NewTable("SM", "inst", "loads", "stores", "L1 hit", "L1 miss", "merged", "blocks")
	for _, s := range g.SMs() {
		st := s.Stats()
		if st.InstIssued == 0 {
			continue
		}
		smTab.AddRow(s.Config().ID, st.InstIssued, st.LoadsIssued, st.StoresIssued,
			st.L1Hits, st.L1Misses, st.L1MergedMisses, st.BlocksRetired)
	}
	smTab.Render(os.Stdout)
	fmt.Println()
	pTab := stats.NewTable("part", "arrivals", "L2 hit", "L2 miss", "stalls", "wb", "row hit", "row conf", "dram sched")
	for i, p := range g.Partitions() {
		ps := p.Stats()
		ds := p.DRAM().Stats()
		pTab.AddRow(i, ps.Arrivals, ps.L2Hits, ps.L2Misses, ps.L2Stalls,
			ps.Writebacks, ds.RowHits, ds.RowConflicts, ds.Scheduled)
	}
	pTab.Render(os.Stdout)
}
